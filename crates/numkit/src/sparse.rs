//! Sparse column-compressed matrices and an LU factorization whose symbolic
//! structure is computed once and reused across numeric refactorizations.
//!
//! This is the classic SPICE optimization: an MNA matrix is re-stamped with
//! new numeric values every Newton iteration of every timestep, but its
//! *sparsity pattern never changes*. The workflow is therefore split:
//!
//! 1. [`CscPattern::from_entries`] — build the structural pattern once;
//! 2. [`SparseLu::factor`] — one-time *symbolic analysis*: a fill-reducing
//!    minimum-degree ordering, a pivot sequence discovered by dense partial
//!    pivoting on the first numeric matrix, and the structural fill pattern
//!    of `L`/`U` under that pivot sequence;
//! 3. [`SparseLu::refactor`] — numeric-only refactorization reusing the
//!    frozen pattern and pivot order, O(nnz(L + U)) per call instead of
//!    O(n³).
//!
//! `refactor` monitors pivot quality: when a frozen pivot decays relative to
//! its column (the matrix values drifted far from the ones the pivot order
//! was chosen on), it reports [`Error::Singular`] and the caller re-runs the
//! full [`SparseLu::factor`] to re-pivot.
//!
//! # Scaling limit
//!
//! The symbolic analysis discovers its pivot sequence by a *dense* partial-
//! pivoting factorization of the permuted matrix — O(n²) memory and O(n³)
//! time, paid once per analysis (and again on every pivot-decay re-pivot).
//! This is the right trade for the MNA systems this workspace targets
//! (tens to a few hundred unknowns); circuits with many thousands of
//! unknowns need a sparse pivot-discovery pass (Gilbert–Peierls / Markowitz)
//! here before the rest of the machinery scales.

use crate::{lu::LuFactor, Error, Matrix, Result};

/// Relative pivot threshold below which a refactorization is declared
/// singular (matches the dense [`LuFactor`] threshold).
const SINGULAR_EPS: f64 = 1e-13;

/// A frozen pivot must stay within this factor of the largest candidate in
/// its column, or the refactorization bails out so the caller can re-pivot.
const PIVOT_RTOL: f64 = 1e-3;

/// Above this dimension the minimum-degree ordering (dense-adjacency greedy,
/// O(n³) worst case) is skipped in favor of the natural order.
const MIN_DEGREE_LIMIT: usize = 256;

/// Structural (symbolic) pattern of a sparse square matrix in
/// column-compressed form. Values live elsewhere, parallel to the entry
/// slots defined here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscPattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl CscPattern {
    /// Builds a pattern from (row, column) pairs. Duplicates are merged;
    /// entry *slots* (indices into a parallel value array) are assigned in
    /// column-major order.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] for `n == 0`.
    /// * [`Error::DimensionMismatch`] if any index is out of range.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyInput);
        }
        let mut sorted: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        for &(r, c) in entries {
            if r >= n || c >= n {
                return Err(Error::DimensionMismatch {
                    expected: format!("indices below {n}"),
                    got: format!("entry ({r}, {c})"),
                });
            }
            sorted.push((c, r));
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        for &(c, r) in &sorted {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        Ok(CscPattern {
            n,
            col_ptr,
            row_idx,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros (= length of the parallel value array).
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Value-array slot of entry `(r, c)`, or `None` if structurally zero.
    pub fn index_of(&self, r: usize, c: usize) -> Option<usize> {
        if r >= self.n || c >= self.n {
            return None;
        }
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .binary_search(&r)
            .ok()
            .map(|off| lo + off)
    }

    /// Iterates `(row, slot)` pairs of column `c`, rows ascending.
    pub fn col_entries(&self, c: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .zip(lo..hi)
            .map(|(&r, slot)| (r, slot))
    }

    /// Materializes the pattern plus a value array into a dense matrix
    /// (diagnostics and golden-value tests).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `values.len() != nnz()`.
    pub fn to_dense(&self, values: &[f64]) -> Result<Matrix> {
        if values.len() != self.nnz() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", self.nnz()),
                got: format!("{} values", values.len()),
            });
        }
        let mut m = Matrix::zeros(self.n, self.n);
        for c in 0..self.n {
            for (r, slot) in self.col_entries(c) {
                m.add_at(r, c, values[slot]);
            }
        }
        Ok(m)
    }
}

/// Greedy minimum-degree ordering on the symmetrized pattern `A + Aᵀ`.
/// Returns `order` with `order[k]` = original index eliminated at step `k`.
fn min_degree_order(p: &CscPattern) -> Vec<usize> {
    let n = p.n;
    if n > MIN_DEGREE_LIMIT {
        return (0..n).collect();
    }
    let mut adj = vec![false; n * n];
    for c in 0..n {
        for (r, _) in p.col_entries(c) {
            if r != c {
                adj[r * n + c] = true;
                adj[c * n + r] = true;
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if eliminated[v] {
                continue;
            }
            let deg = (0..n).filter(|&u| !eliminated[u] && adj[v * n + u]).count();
            if deg < best_deg {
                best_deg = deg;
                best = v;
            }
        }
        eliminated[best] = true;
        order.push(best);
        // Eliminating `best` cliques its remaining neighbors (the fill this
        // ordering is trying to minimize).
        let nbrs: Vec<usize> = (0..n)
            .filter(|&u| !eliminated[u] && adj[best * n + u])
            .collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                adj[a * n + b] = true;
                adj[b * n + a] = true;
            }
        }
    }
    order
}

/// LU factorization of a sparse matrix with a frozen symbolic structure.
///
/// Built once per pattern by [`SparseLu::factor`]; subsequent matrices with
/// the same pattern are handled by [`SparseLu::refactor`].
///
/// # Example
///
/// ```
/// use numkit::sparse::{CscPattern, SparseLu};
/// # fn main() -> Result<(), numkit::Error> {
/// let pat = CscPattern::from_entries(2, &[(0, 0), (0, 1), (1, 0), (1, 1)])?;
/// // Column-major slots: (0,0) (1,0) (0,1) (1,1).
/// let mut lu = SparseLu::factor(&pat, &[2.0, 1.0, 1.0, 3.0])?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// // New values, same structure: numeric-only refactorization.
/// lu.refactor(&[4.0, 1.0, 1.0, 3.0])?;
/// let x = lu.solve(&[4.0, 4.0])?;
/// assert!((4.0 * x[0] + x[1] - 4.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Permuted row -> original row (`q[p[r]]`).
    rowmap: Vec<usize>,
    /// Permuted column -> original column (`q[c]`).
    colmap: Vec<usize>,
    /// Strictly-lower L (unit diagonal implied), column compressed, rows
    /// ascending, in the permuted space.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// Strictly-upper U, column compressed, rows ascending.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    /// U diagonal (pivots).
    diag: Vec<f64>,
    /// Scatter plan: for permuted column `k`, the (permuted row, value slot)
    /// pairs of the original matrix entries landing in that column.
    sc_ptr: Vec<usize>,
    sc_rows: Vec<usize>,
    sc_slots: Vec<usize>,
    /// Dense accumulator, kept zeroed between uses.
    work: Vec<f64>,
}

impl SparseLu {
    /// Full factorization: symbolic analysis on `pattern` (ordering, pivot
    /// discovery on `values`, structural fill) followed by a numeric pass.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `values.len() != pattern.nnz()`.
    /// * [`Error::Singular`] for structurally or numerically singular input.
    pub fn factor(pattern: &CscPattern, values: &[f64]) -> Result<Self> {
        let n = pattern.n();
        if values.len() != pattern.nnz() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", pattern.nnz()),
                got: format!("{} values", values.len()),
            });
        }
        // 1. Fill-reducing symmetric ordering.
        let q = min_degree_order(pattern);
        let mut qinv = vec![0usize; n];
        for (k, &orig) in q.iter().enumerate() {
            qinv[orig] = k;
        }
        // 2. Pivot discovery: dense partial pivoting on the symmetrically
        //    permuted matrix. Runs once per symbolic analysis.
        let mut ap = Matrix::zeros(n, n);
        for c in 0..n {
            for (r, slot) in pattern.col_entries(c) {
                ap.add_at(qinv[r], qinv[c], values[slot]);
            }
        }
        let dense = LuFactor::new(&ap)?;
        let p = dense.perm();
        let mut rowmap = vec![0usize; n];
        let mut rowinv = vec![0usize; n];
        for r in 0..n {
            rowmap[r] = q[p[r]];
            rowinv[rowmap[r]] = r;
        }
        let colmap = q;

        // 3. Structural elimination on the permuted + row-pivoted pattern:
        //    row bitsets accumulate the fill of Gaussian elimination with
        //    the frozen pivot sequence.
        let words = n.div_ceil(64);
        let mut rows = vec![0u64; n * words];
        let mut sc_cols: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for c in 0..n {
            let pc = qinv[c];
            for (r, slot) in pattern.col_entries(c) {
                let pr = rowinv[r];
                rows[pr * words + pc / 64] |= 1u64 << (pc % 64);
                sc_cols[pc].push((pr, slot));
            }
        }
        for k in 0..n {
            // Mask of row k restricted to columns > k.
            let mut above = vec![0u64; words];
            above[k / 64] = !0u64 << (k % 64) << 1;
            for w in above.iter_mut().skip(k / 64 + 1) {
                *w = !0u64;
            }
            for i in (k + 1)..n {
                if rows[i * words + k / 64] & (1u64 << (k % 64)) != 0 {
                    for w in 0..words {
                        let add = rows[k * words + w] & above[w];
                        rows[i * words + w] |= add;
                    }
                }
            }
        }
        let bit =
            |rows: &[u64], r: usize, c: usize| rows[r * words + c / 64] & (1 << (c % 64)) != 0;
        let mut l_colptr = vec![0usize; n + 1];
        let mut l_rows = Vec::new();
        let mut u_colptr = vec![0usize; n + 1];
        let mut u_rows = Vec::new();
        for k in 0..n {
            for j in 0..k {
                if bit(&rows, j, k) {
                    u_rows.push(j);
                }
            }
            u_colptr[k + 1] = u_rows.len();
            for i in (k + 1)..n {
                if bit(&rows, i, k) {
                    l_rows.push(i);
                }
            }
            l_colptr[k + 1] = l_rows.len();
        }
        let mut sc_ptr = vec![0usize; n + 1];
        let mut sc_rows = Vec::with_capacity(pattern.nnz());
        let mut sc_slots = Vec::with_capacity(pattern.nnz());
        for (k, col) in sc_cols.iter().enumerate() {
            for &(pr, slot) in col {
                sc_rows.push(pr);
                sc_slots.push(slot);
            }
            sc_ptr[k + 1] = sc_rows.len();
        }

        let l_nnz = l_rows.len();
        let u_nnz = u_rows.len();
        let mut lu = SparseLu {
            n,
            rowmap,
            colmap,
            l_colptr,
            l_rows,
            l_vals: vec![0.0; l_nnz],
            u_colptr,
            u_rows,
            u_vals: vec![0.0; u_nnz],
            diag: vec![0.0; n],
            sc_ptr,
            sc_rows,
            sc_slots,
            work: vec![0.0; n],
        };
        // 4. Numeric pass through the same code path refactorizations use.
        lu.refactor(values)?;
        Ok(lu)
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the factors (L + U + diagonal) — the per-call
    /// cost driver of [`SparseLu::refactor`].
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len() + self.n
    }

    /// Numeric-only refactorization: same pattern, same pivot order, new
    /// values. Left-looking over the frozen column structures.
    ///
    /// # Errors
    ///
    /// [`Error::Singular`] when a frozen pivot falls below the singularity
    /// threshold *or* decays badly relative to its column (the caller should
    /// then re-run [`SparseLu::factor`] to choose fresh pivots).
    pub fn refactor(&mut self, values: &[f64]) -> Result<()> {
        let n = self.n;
        if values.len() != self.sc_slots.len() {
            return Err(Error::DimensionMismatch {
                expected: format!("{} values", self.sc_slots.len()),
                got: format!("{} values", values.len()),
            });
        }
        let SparseLu {
            l_colptr,
            l_rows,
            l_vals,
            u_colptr,
            u_rows,
            u_vals,
            diag,
            sc_ptr,
            sc_rows,
            sc_slots,
            work: x,
            ..
        } = self;
        for k in 0..n {
            // Scatter column k of A (permuted) into the accumulator.
            let mut colscale = f64::MIN_POSITIVE;
            for idx in sc_ptr[k]..sc_ptr[k + 1] {
                let v = values[sc_slots[idx]];
                x[sc_rows[idx]] += v;
                colscale = colscale.max(v.abs());
            }
            // Left-looking update: consume U entries ascending.
            for idx in u_colptr[k]..u_colptr[k + 1] {
                let j = u_rows[idx];
                let ujk = x[j];
                u_vals[idx] = ujk;
                if ujk != 0.0 {
                    for l in l_colptr[j]..l_colptr[j + 1] {
                        x[l_rows[l]] -= l_vals[l] * ujk;
                    }
                }
            }
            let pivot = x[k];
            let mut colmax = pivot.abs();
            for idx in l_colptr[k]..l_colptr[k + 1] {
                colmax = colmax.max(x[l_rows[idx]].abs());
            }
            if pivot.abs() < SINGULAR_EPS * colscale || pivot.abs() < PIVOT_RTOL * colmax {
                // Restore the zero invariant of the accumulator before
                // reporting, so a later refactor starts clean.
                x[k] = 0.0;
                for idx in u_colptr[k]..u_colptr[k + 1] {
                    x[u_rows[idx]] = 0.0;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    x[l_rows[idx]] = 0.0;
                }
                return Err(Error::Singular { pivot: k });
            }
            diag[k] = pivot;
            for idx in l_colptr[k]..l_colptr[k + 1] {
                l_vals[idx] = x[l_rows[idx]] / pivot;
            }
            // Clear the accumulator at exactly the column-k pattern.
            x[k] = 0.0;
            for idx in u_colptr[k]..u_colptr[k + 1] {
                x[u_rows[idx]] = 0.0;
            }
            for idx in l_colptr[k]..l_colptr[k + 1] {
                x[l_rows[idx]] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves `A x = b` with the current factors, writing into `out` and
    /// using `scratch` as the permuted intermediate (both length `n`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on length mismatches.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], scratch: &mut [f64]) -> Result<()> {
        let n = self.n;
        if b.len() != n || out.len() != n || scratch.len() != n {
            return Err(Error::DimensionMismatch {
                expected: format!("vectors of length {n}"),
                got: format!("{} / {} / {}", b.len(), out.len(), scratch.len()),
            });
        }
        for r in 0..n {
            scratch[r] = b[self.rowmap[r]];
        }
        // Forward substitution (unit lower, column access).
        for j in 0..n {
            let dj = scratch[j];
            if dj != 0.0 {
                for idx in self.l_colptr[j]..self.l_colptr[j + 1] {
                    scratch[self.l_rows[idx]] -= self.l_vals[idx] * dj;
                }
            }
        }
        // Back substitution (upper, column access).
        for k in (0..n).rev() {
            let yk = scratch[k] / self.diag[k];
            scratch[k] = yk;
            if yk != 0.0 {
                for idx in self.u_colptr[k]..self.u_colptr[k + 1] {
                    scratch[self.u_rows[idx]] -= self.u_vals[idx] * yk;
                }
            }
        }
        for c in 0..n {
            out[self.colmap[c]] = scratch[c];
        }
        Ok(())
    }

    /// Allocating convenience wrapper around [`SparseLu::solve_into`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.n];
        let mut scratch = vec![0.0; self.n];
        self.solve_into(b, &mut out, &mut scratch)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_entries(m: &Matrix) -> (Vec<(usize, usize)>, Vec<f64>) {
        // Column-major so slots line up with CscPattern's ordering.
        let mut e = Vec::new();
        let mut v = Vec::new();
        for c in 0..m.cols() {
            for r in 0..m.rows() {
                if m.get(r, c) != 0.0 {
                    e.push((r, c));
                    v.push(m.get(r, c));
                }
            }
        }
        (e, v)
    }

    #[test]
    fn pattern_slots_and_lookup() {
        let pat = CscPattern::from_entries(3, &[(2, 0), (0, 0), (1, 2), (0, 0)]).unwrap();
        assert_eq!(pat.n(), 3);
        assert_eq!(pat.nnz(), 3); // duplicate merged
        assert_eq!(pat.index_of(0, 0), Some(0));
        assert_eq!(pat.index_of(2, 0), Some(1));
        assert_eq!(pat.index_of(1, 2), Some(2));
        assert_eq!(pat.index_of(1, 1), None);
        assert_eq!(pat.index_of(9, 0), None);
    }

    #[test]
    fn pattern_validation() {
        assert!(matches!(
            CscPattern::from_entries(0, &[]),
            Err(Error::EmptyInput)
        ));
        assert!(CscPattern::from_entries(2, &[(2, 0)]).is_err());
    }

    #[test]
    fn solves_dense_reference_system() {
        let a = Matrix::from_rows(&[
            &[4.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 2.0],
            &[1.0, 0.0, 5.0, 0.0],
            &[0.0, 2.0, 0.0, 6.0],
        ])
        .unwrap();
        let (e, v) = dense_entries(&a);
        let pat = CscPattern::from_entries(4, &e).unwrap();
        let lu = SparseLu::factor(&pat, &v).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_zero_diagonal_like_mna_branch_rows() {
        // Voltage-source-style block: structural zero on the (2,2) diagonal
        // forces off-diagonal pivoting.
        let a =
            Matrix::from_rows(&[&[1e-3, 0.0, 1.0], &[0.0, 2e-3, -1.0], &[1.0, -1.0, 0.0]]).unwrap();
        let (e, v) = dense_entries(&a);
        let pat = CscPattern::from_entries(3, &e).unwrap();
        let lu = SparseLu::factor(&pat, &v).unwrap();
        let b = [0.0, 0.0, 2.5];
        let x = lu.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn refactor_tracks_new_values() {
        let a0 =
            Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 4.0]]).unwrap();
        let (e, v0) = dense_entries(&a0);
        let pat = CscPattern::from_entries(3, &e).unwrap();
        let mut lu = SparseLu::factor(&pat, &v0).unwrap();
        // Same structure, different values.
        let a1 =
            Matrix::from_rows(&[&[5.0, -1.0, 0.0], &[2.0, 7.0, 0.5], &[0.0, -3.0, 9.0]]).unwrap();
        let (_, v1) = dense_entries(&a1);
        lu.refactor(&v1).unwrap();
        let b = [1.0, -2.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let r = a1.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn refactor_rejects_decayed_pivot_then_factor_recovers() {
        // First matrix: diagonally dominant, diagonal pivots chosen. Second
        // matrix zeroes a diagonal entry: the frozen pivot decays and
        // refactor must bail out; a fresh factor() succeeds by re-pivoting.
        let a0 = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 4.0]]).unwrap();
        let (e, v0) = dense_entries(&a0);
        let pat = CscPattern::from_entries(2, &e).unwrap();
        let mut lu = SparseLu::factor(&pat, &v0).unwrap();
        let v1 = [1e-9, 1.0, 1.0, 1e-9]; // slots: (0,0) (1,0) (0,1) (1,1)
        assert!(matches!(lu.refactor(&v1), Err(Error::Singular { .. })));
        let lu2 = SparseLu::factor(&pat, &v1).unwrap();
        let x = lu2.solve(&[2.0, 5.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-6 && (x[0] - 5.0).abs() < 1e-6);
        // The failed refactor must not poison the accumulator: a refactor
        // with the original values still works on the old object.
        lu.refactor(&v0).unwrap();
        let x = lu.solve(&[5.0, 5.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let (e, v) = dense_entries(&a);
        let pat = CscPattern::from_entries(2, &e).unwrap();
        assert!(matches!(
            SparseLu::factor(&pat, &v),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn to_dense_round_trip() {
        // Column-major slots: (0,0) then (0,1) then (1,1).
        let pat = CscPattern::from_entries(2, &[(0, 0), (1, 1), (0, 1)]).unwrap();
        let m = pat.to_dense(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert!(pat.to_dense(&[1.0]).is_err());
    }

    #[test]
    fn min_degree_prefers_low_degree_nodes() {
        // Star graph: center 0 connected to 1..4. Eliminating the hub first
        // would fill the whole matrix; min-degree defers it behind the
        // degree-1 leaves and the factorization stays fill-free.
        let mut e = vec![(0usize, 0usize)];
        for k in 1..5 {
            e.push((k, k));
            e.push((0, k));
            e.push((k, 0));
        }
        let pat = CscPattern::from_entries(5, &e).unwrap();
        let order = min_degree_order(&pat);
        assert_ne!(order[0], 0, "hub must not be eliminated first");
        // Diagonally dominant values aligned with the pattern.
        let mut vals = vec![0.0; pat.nnz()];
        for c in 0..5 {
            for (r, slot) in pat.col_entries(c) {
                vals[slot] = if r == c { 8.0 } else { 1.0 };
            }
        }
        let lu = SparseLu::factor(&pat, &vals).unwrap();
        // Zero fill: L and U each hold exactly the 4 off-diagonal edges.
        assert_eq!(lu.factor_nnz(), 4 + 4 + 5);
    }

    #[test]
    fn dimension_errors() {
        let pat = CscPattern::from_entries(2, &[(0, 0), (1, 1)]).unwrap();
        assert!(SparseLu::factor(&pat, &[1.0]).is_err());
        let mut lu = SparseLu::factor(&pat, &[1.0, 1.0]).unwrap();
        assert!(lu.refactor(&[1.0]).is_err());
        assert!(lu.solve(&[1.0]).is_err());
        assert_eq!(lu.dim(), 2);
    }
}
