//! Cholesky factorization for symmetric positive-definite systems.

use crate::{Error, Matrix, Result};

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite matrix.
///
/// Used for normal-equation solves in regularized regression where the Gram
/// matrix is SPD by construction.
///
/// # Example
///
/// ```
/// use numkit::{Matrix, cholesky::CholeskyFactor};
/// # fn main() -> Result<(), numkit::Error> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let x = CholeskyFactor::new(&a)?.solve(&[2.0, 1.0])?;
/// assert!((4.0 * x[0] + 2.0 * x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Lower-triangular factor.
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `a` is not square.
    /// * [`Error::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(Error::EmptyInput);
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut d = a.get(j, j);
            for k in 0..j {
                d -= l.get(j, k) * l.get(j, k);
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(Error::NotPositiveDefinite { column: j });
            }
            let dj = d.sqrt();
            l.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / dj);
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` using forward + backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                got: format!("rhs of length {}", b.len()),
            });
        }
        // L y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.l.get(i, k) * y[k];
            }
            y[i] = s / self.l.get(i, i);
        }
        // L^T x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * y[k];
            }
            y[i] = s / self.l.get(i, i);
        }
        Ok(y)
    }

    /// Returns a reference to the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Solves the ridge-regularized normal equations
/// `(A^T A + lambda I) x = A^T b`.
///
/// This is the standard fallback when a regression matrix is numerically
/// rank-deficient; `lambda` trades bias for conditioning.
///
/// # Errors
///
/// Propagates shape errors and [`Error::NotPositiveDefinite`] (possible only
/// for `lambda = 0` with rank-deficient `A`).
pub fn ridge_solve(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    let mut g = a.gram();
    for i in 0..g.rows() {
        g.add_at(i, i, lambda);
    }
    let rhs = a.t_matvec(b)?;
    CholeskyFactor::new(&g)?.solve(&rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve_spd() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let chol = CholeskyFactor::new(&a).unwrap();
        // Known factor from the classic example.
        let l = chol.l();
        assert!((l.get(0, 0) - 5.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 3.0).abs() < 1e-12);
        assert!((l.get(2, 2) - 3.0).abs() < 1e-12);
        let b = [1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
        assert!(CholeskyFactor::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let chol = CholeskyFactor::new(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }

    #[test]
    fn ridge_matches_ls_when_lambda_zero() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let ls = crate::qr::solve_ls(&a, &b).unwrap();
        let ridge = ridge_solve(&a, &b, 0.0).unwrap();
        for (p, q) in ls.iter().zip(&ridge) {
            assert!((p - q).abs() < 1e-10);
        }
    }

    #[test]
    fn ridge_handles_rank_deficiency() {
        // Columns are parallel: plain LS fails, ridge succeeds.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        assert!(crate::qr::solve_ls(&a, &b).is_err());
        let x = ridge_solve(&a, &b, 1e-8).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-3);
        }
    }
}
