//! Householder QR factorization and least-squares solves.

use crate::{Error, Matrix, Result};

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// Stores the Householder vectors in the lower trapezoid and `R` in the upper
/// triangle, which is all that is needed for least-squares solves without
/// explicitly forming `Q`.
///
/// # Example
///
/// ```
/// use numkit::{Matrix, qr::QrFactor};
/// # fn main() -> Result<(), numkit::Error> {
/// // Overdetermined fit of y = 2x + 1 from noisy-free data.
/// let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0]])?;
/// let x = QrFactor::new(&a)?.solve_ls(&[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Householder vectors (below diagonal) and R (upper triangle).
    qr: Matrix,
    /// Scalar tau for each Householder reflector.
    tau: Vec<f64>,
}

impl QrFactor {
    /// Factorizes `a` (`m x n`, requires `m >= n >= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for under-determined shapes and
    /// [`Error::EmptyInput`] for empty matrices.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = (a.rows(), a.cols());
        if m == 0 || n == 0 {
            return Err(Error::EmptyInput);
        }
        if m < n {
            return Err(Error::DimensionMismatch {
                expected: "rows >= cols".into(),
                got: format!("{m}x{n}"),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Householder reflector annihilating qr[k+1.., k].
            let mut norm2 = 0.0;
            for i in k..m {
                let v = qr.get(i, k);
                norm2 += v * v;
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let akk = qr.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, stored normalized so v[k] = 1.
            let v0 = akk - alpha;
            // tau = -v0 / alpha  (standard LAPACK-style scaling)
            tau[k] = -v0 / alpha;
            for i in (k + 1)..m {
                let v = qr.get(i, k) / v0;
                qr.set(i, k, v);
            }
            qr.set(k, k, alpha);
            // Apply reflector to remaining columns.
            for c in (k + 1)..n {
                let mut s = qr.get(k, c);
                for i in (k + 1)..m {
                    s += qr.get(i, k) * qr.get(i, c);
                }
                s *= tau[k];
                qr.add_at(k, c, -s);
                for i in (k + 1)..m {
                    let vik = qr.get(i, k);
                    qr.add_at(i, c, -s * vik);
                }
            }
        }
        Ok(QrFactor { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Applies `Q^T` to a copy of `b` and returns it.
    fn apply_qt(&self, b: &[f64]) -> Vec<f64> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr.get(i, k) * y[i];
            }
            s *= self.tau[k];
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr.get(i, k);
            }
        }
        y
    }

    /// Solves the least-squares problem `min ||A x - b||_2`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `b.len() != rows()`.
    /// * [`Error::Singular`] if `R` has a (near-)zero diagonal, i.e. the
    ///   columns of `A` are linearly dependent.
    pub fn solve_ls(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs of length {m}"),
                got: format!("rhs of length {}", b.len()),
            });
        }
        let y = self.apply_qt(b);
        let scale = self.qr.max_abs().max(f64::MIN_POSITIVE);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.qr.get(i, k) * x[k];
            }
            let rii = self.qr.get(i, i);
            if rii.abs() < 1e-13 * scale {
                return Err(Error::Singular { pivot: i });
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Smallest and largest absolute values on the diagonal of `R`.
    ///
    /// Because the singular values of `A` interlace the sorted `|R_ii|`
    /// loosely, `max/min` of this pair is the standard cheap condition
    /// estimate for least-squares problems: `min ≈ 0` flags numerically
    /// dependent columns, and `min/max` is a usable reciprocal condition
    /// number without an SVD.
    pub fn r_diag_extrema(&self) -> (f64, f64) {
        let n = self.qr.cols();
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..n {
            let d = self.qr.get(i, i).abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        (lo, hi)
    }

    /// Squared residual `||A x - b||^2` of the least-squares solution,
    /// computed from the tail of `Q^T b` without forming the solution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != rows()`.
    pub fn residual_sq(&self, b: &[f64]) -> Result<f64> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        if b.len() != m {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs of length {m}"),
                got: format!("rhs of length {}", b.len()),
            });
        }
        let y = self.apply_qt(b);
        Ok(y[n..].iter().map(|v| v * v).sum())
    }
}

/// One-shot least-squares solve `min ||A x - b||`.
///
/// # Errors
///
/// Propagates errors from [`QrFactor::new`] and [`QrFactor::solve_ls`].
pub fn solve_ls(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    QrFactor::new(a)?.solve_ls(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_matches_lu() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = [9.0, 8.0];
        let x_qr = solve_ls(&a, &b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        for (p, q) in x_qr.iter().zip(&x_lu) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn overdetermined_exact_fit() {
        // Data exactly on the model y = 3 x - 2.
        let xs = [0.0_f64, 0.5, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let b: Vec<f64> = xs.iter().map(|&x| 3.0 * x - 2.0).collect();
        let x = solve_ls(&a, &b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
        let qr = QrFactor::new(&a).unwrap();
        assert!(qr.residual_sq(&b).unwrap() < 1e-20);
    }

    #[test]
    fn overdetermined_minimizes_residual() {
        // Inconsistent system: residual of LS solution must be <= residual of
        // any perturbed solution.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 1.0, 0.0];
        let x = solve_ls(&a, &b).unwrap();
        let res = |x: &[f64]| -> f64 {
            let r = a.matvec(x).unwrap();
            r.iter().zip(&b).map(|(ri, bi)| (ri - bi).powi(2)).sum()
        };
        let base = res(&x);
        for d in [[1e-3, 0.0], [0.0, 1e-3], [-1e-3, 1e-3]] {
            let xp = [x[0] + d[0], x[1] + d[1]];
            assert!(res(&xp) >= base - 1e-15);
        }
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        let qr = QrFactor::new(&a).unwrap();
        assert!(matches!(
            qr.solve_ls(&[1.0, 2.0, 3.0]),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn shape_checks() {
        assert!(QrFactor::new(&Matrix::zeros(2, 3)).is_err());
        assert!(QrFactor::new(&Matrix::zeros(0, 0)).is_err());
        let qr = QrFactor::new(&Matrix::identity(2)).unwrap();
        assert!(qr.solve_ls(&[1.0]).is_err());
        assert!(qr.residual_sq(&[1.0]).is_err());
    }
}
