//! Structural (combinatorial) analysis of sparse matrix patterns.
//!
//! The structural rank of a pattern is the size of a maximum matching in the
//! bipartite graph rows × columns with an edge per (potential) nonzero. It is
//! an upper bound on the numeric rank that depends only on the sparsity
//! pattern: a pattern with structural rank < n is singular for *every* choice
//! of numeric values, so the check catches wiring mistakes (floating nodes,
//! unstamped branch equations) before any factorization is attempted.
//!
//! The matching is found with repeated BFS augmenting-path searches (Kuhn's
//! algorithm with a greedy warm start). Complexity is O(n · nnz) worst case,
//! which is far below a single numeric factorization for the patterns this is
//! guarding.

/// Maximum-bipartite-matching structural rank of an `n × n` pattern.
///
/// `entries` lists (row, column) positions of potential nonzeros; duplicates
/// are allowed and positions outside the `n × n` window are ignored. Returns
/// the size of a maximum row↔column matching, i.e. the largest number of
/// nonzero positions no two of which share a row or a column.
///
/// ```
/// use numkit::structure::structural_rank;
/// // Full diagonal: full structural rank.
/// assert_eq!(structural_rank(3, &[(0, 0), (1, 1), (2, 2)]), 3);
/// // Row 2 is empty: rank deficient no matter the values.
/// assert_eq!(structural_rank(3, &[(0, 0), (1, 1), (0, 2), (1, 2)]), 2);
/// ```
pub fn structural_rank(n: usize, entries: &[(usize, usize)]) -> usize {
    if n == 0 {
        return 0;
    }
    // Column -> candidate rows adjacency, deduplicated for speed.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(r, c) in entries {
        if r < n && c < n {
            adj[c].push(r);
        }
    }
    for rows in &mut adj {
        rows.sort_unstable();
        rows.dedup();
    }

    const UNMATCHED: usize = usize::MAX;
    let mut match_of_row = vec![UNMATCHED; n]; // row -> column
    let mut match_of_col = vec![UNMATCHED; n]; // column -> row
    let mut rank = 0usize;

    // Greedy warm start: pairs off most of the diagonal-dominant patterns in
    // one linear pass, leaving few augmenting searches.
    for (c, rows) in adj.iter().enumerate() {
        for &r in rows {
            if match_of_row[r] == UNMATCHED {
                match_of_row[r] = c;
                match_of_col[c] = r;
                rank += 1;
                break;
            }
        }
    }

    // BFS augmenting path from each still-unmatched column. Iterative (no
    // recursion) so deep alternating chains cannot overflow the stack.
    let mut parent_col = vec![UNMATCHED; n]; // row -> column that discovered it
    let mut visited = vec![false; n]; // rows visited this search
    let mut queue: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if match_of_col[start] != UNMATCHED || adj[start].is_empty() {
            continue;
        }
        visited.iter_mut().for_each(|v| *v = false);
        queue.clear();
        queue.push(start);
        let mut head = 0;
        let mut endpoint = UNMATCHED;
        'bfs: while head < queue.len() {
            let c = queue[head];
            head += 1;
            for &r in &adj[c] {
                if visited[r] {
                    continue;
                }
                visited[r] = true;
                parent_col[r] = c;
                if match_of_row[r] == UNMATCHED {
                    endpoint = r;
                    break 'bfs;
                }
                queue.push(match_of_row[r]);
            }
        }
        if endpoint != UNMATCHED {
            // Flip the alternating path back to the start column.
            let mut r = endpoint;
            loop {
                let c = parent_col[r];
                let prev = match_of_col[c];
                match_of_row[r] = c;
                match_of_col[c] = r;
                if prev == UNMATCHED {
                    break;
                }
                r = prev;
            }
            rank += 1;
        }
    }
    rank
}

/// Rows of an `n × n` pattern that contain no entry at all.
///
/// A structurally empty row is the simplest witness of structural
/// singularity; callers can report it with better wording than a generic
/// rank deficit.
pub fn empty_rows(n: usize, entries: &[(usize, usize)]) -> Vec<usize> {
    let mut seen = vec![false; n];
    for &(r, c) in entries {
        if r < n && c < n {
            seen[r] = true;
        }
    }
    (0..n).filter(|&r| !seen[r]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_pattern_has_rank_zero() {
        assert_eq!(structural_rank(0, &[]), 0);
        assert_eq!(structural_rank(4, &[]), 0);
    }

    #[test]
    fn diagonal_is_full_rank() {
        let entries: Vec<_> = (0..50).map(|i| (i, i)).collect();
        assert_eq!(structural_rank(50, &entries), 50);
    }

    #[test]
    fn dense_pattern_is_full_rank() {
        let mut entries = Vec::new();
        for r in 0..6 {
            for c in 0..6 {
                entries.push((r, c));
            }
        }
        assert_eq!(structural_rank(6, &entries), 6);
    }

    #[test]
    fn duplicate_and_out_of_range_entries_are_tolerated() {
        let entries = [(0, 0), (0, 0), (1, 1), (9, 9), (1, 7)];
        assert_eq!(structural_rank(2, &entries), 2);
    }

    #[test]
    fn empty_row_caps_rank() {
        // 3x3 with row 2 empty.
        let entries = [(0, 0), (0, 1), (1, 0), (1, 2)];
        assert_eq!(structural_rank(3, &entries), 2);
        assert_eq!(empty_rows(3, &entries), vec![2]);
    }

    #[test]
    fn column_collision_needs_augmentation() {
        // Greedy pairing of column 0 with row 0 must be re-routed through an
        // augmenting path to reach full rank.
        let entries = [(0, 0), (0, 1), (1, 0)];
        assert_eq!(structural_rank(2, &entries), 2);
    }

    #[test]
    fn two_columns_sharing_one_row_are_deficient() {
        // Columns 0 and 1 can only match row 0: rank 2 at best.
        let entries = [(0, 0), (0, 1), (1, 2), (2, 2)];
        assert_eq!(structural_rank(3, &entries), 2);
    }

    #[test]
    fn long_alternating_chain_augments_iteratively() {
        // Pattern designed so every augmenting search walks a long chain:
        // column i matches rows {i, i+1}, last column only row 0.
        let n = 800;
        let mut entries = Vec::new();
        for c in 0..n - 1 {
            entries.push((c, c));
            entries.push((c + 1, c));
        }
        entries.push((0, n - 1));
        assert_eq!(structural_rank(n, &entries), n);
    }

    #[test]
    fn empty_rows_reports_all_missing() {
        assert_eq!(empty_rows(3, &[]), vec![0, 1, 2]);
        assert_eq!(empty_rows(2, &[(0, 1), (1, 0)]), Vec::<usize>::new());
    }
}
