//! High-level least-squares helpers used by the identification code.

use crate::{cholesky, qr, Error, Matrix, Result};

/// Result of a least-squares fit: coefficients plus quality indicators.
#[derive(Debug, Clone)]
pub struct LsFit {
    /// Estimated coefficient vector.
    pub coeffs: Vec<f64>,
    /// Residual sum of squares `||A x - b||^2`.
    pub rss: f64,
    /// Number of observations (rows of the regression matrix).
    pub n_obs: usize,
}

impl LsFit {
    /// Root-mean-square residual.
    pub fn rms(&self) -> f64 {
        if self.n_obs == 0 {
            return 0.0;
        }
        (self.rss / self.n_obs as f64).sqrt()
    }
}

/// Solves `min ||A x - b||` by Householder QR, falling back to a tiny ridge
/// regularization if the columns of `A` are numerically dependent.
///
/// The fallback keeps identification pipelines robust when a candidate
/// regressor happens to be (nearly) redundant; the bias introduced by the
/// `1e-10`-scaled ridge is far below waveform noise levels.
///
/// # Errors
///
/// Returns shape errors from the underlying factorizations.
pub fn robust_ls(a: &Matrix, b: &[f64]) -> Result<LsFit> {
    if a.rows() != b.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("rhs of length {}", a.rows()),
            got: format!("rhs of length {}", b.len()),
        });
    }
    let coeffs = match qr::solve_ls(a, b) {
        Ok(x) => x,
        Err(Error::Singular { .. }) => {
            let scale = a.max_abs().max(1.0);
            cholesky::ridge_solve(a, b, 1e-10 * scale * scale)?
        }
        Err(e) => return Err(e),
    };
    let pred = a.matvec(&coeffs)?;
    let rss = pred
        .iter()
        .zip(b)
        .map(|(p, y)| (p - y) * (p - y))
        .sum::<f64>();
    Ok(LsFit {
        coeffs,
        rss,
        n_obs: b.len(),
    })
}

/// Fits a polynomial of degree `deg` to `(x, y)` samples, returning
/// coefficients in ascending-power order `c0 + c1 x + ...`.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `x.len() != y.len()`.
/// * [`Error::EmptyInput`] if fewer than `deg + 1` samples are given.
pub fn polyfit(x: &[f64], y: &[f64], deg: usize) -> Result<Vec<f64>> {
    if x.len() != y.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("y of length {}", x.len()),
            got: format!("y of length {}", y.len()),
        });
    }
    if x.len() < deg + 1 {
        return Err(Error::EmptyInput);
    }
    let mut a = Matrix::zeros(x.len(), deg + 1);
    for (r, &xi) in x.iter().enumerate() {
        let mut p = 1.0;
        for c in 0..=deg {
            a.set(r, c, p);
            p *= xi;
        }
    }
    Ok(robust_ls(&a, y)?.coeffs)
}

/// Evaluates a polynomial with ascending-power coefficients at `x`.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_ls_plain_case() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 1.0, 2.0];
        let fit = robust_ls(&a, &b).unwrap();
        assert!((fit.coeffs[0] - 1.0).abs() < 1e-12);
        assert!((fit.coeffs[1] - 1.0).abs() < 1e-12);
        assert!(fit.rss < 1e-20);
        assert!(fit.rms() < 1e-10);
    }

    #[test]
    fn robust_ls_survives_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let b = [2.0, 4.0, 6.0];
        let fit = robust_ls(&a, &b).unwrap();
        // Prediction must still be accurate even though the split between the
        // two coefficients is arbitrary.
        let pred = a.matvec(&fit.coeffs).unwrap();
        for (p, y) in pred.iter().zip(&b) {
            assert!((p - y).abs() < 1e-4);
        }
    }

    #[test]
    fn robust_ls_checks_shape() {
        let a = Matrix::identity(2);
        assert!(robust_ls(&a, &[1.0]).is_err());
    }

    #[test]
    fn polyfit_recovers_cubic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3 - 3.0).collect();
        let truth = [1.0, -2.0, 0.5, 0.25];
        let ys: Vec<f64> = xs.iter().map(|&x| polyval(&truth, x)).collect();
        let c = polyfit(&xs, &ys, 3).unwrap();
        for (a, b) in c.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn polyfit_shape_errors() {
        assert!(polyfit(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn polyval_constant_and_empty() {
        assert_eq!(polyval(&[5.0], 100.0), 5.0);
        assert_eq!(polyval(&[], 1.0), 0.0);
    }
}
