//! High-level least-squares helpers used by the identification code.

use crate::{cholesky, qr, Error, Matrix, Result};

/// Result of a least-squares fit: coefficients plus quality indicators.
#[derive(Debug, Clone)]
pub struct LsFit {
    /// Estimated coefficient vector.
    pub coeffs: Vec<f64>,
    /// Residual sum of squares `||A x - b||^2`.
    pub rss: f64,
    /// Number of observations (rows of the regression matrix).
    pub n_obs: usize,
    /// Reciprocal condition estimate of the regression matrix from the
    /// R-diagonal of its QR factorization (`min |R_ii| / max |R_ii|`); 0 for
    /// an exactly rank-deficient matrix.
    pub r_cond: f64,
    /// True when the QR solve declared the columns numerically dependent and
    /// the ridge fallback produced the coefficients. Identification tests
    /// assert this never fires on healthy data.
    pub ridge_fallback: bool,
    /// Ridge value used by the fallback (0 when `ridge_fallback` is false).
    pub ridge: f64,
}

impl LsFit {
    /// Root-mean-square residual.
    pub fn rms(&self) -> f64 {
        if self.n_obs == 0 {
            return 0.0;
        }
        (self.rss / self.n_obs as f64).sqrt()
    }
}

/// Solves `min ||A x - b||` by Householder QR, falling back to a ridge
/// regularization if the columns of `A` are numerically dependent.
///
/// The fallback keeps identification pipelines robust when a candidate
/// regressor happens to be (nearly) redundant. The ridge is derived from
/// the R-diagonal condition estimate of the QR factorization rather than a
/// fixed constant: `λ = (ε^¼ · max|R_ii|)²` lifts the smallest effective
/// singular value to `ε^¼ · max|R_ii|`, capping the effective condition
/// number at `ε^-¼ ≈ 8×10³`. That keeps `λ` safely above the `O(m·ε)`
/// rounding noise of forming `AᵀA` (where a fixed tiny ridge can lose
/// positive definiteness) while biasing predictions by at most `~√ε`
/// relative — far below waveform noise levels. [`LsFit::ridge_fallback`]
/// records whether the fallback was taken.
///
/// # Errors
///
/// Returns shape errors from the underlying factorizations.
pub fn robust_ls(a: &Matrix, b: &[f64]) -> Result<LsFit> {
    if a.rows() != b.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("rhs of length {}", a.rows()),
            got: format!("rhs of length {}", b.len()),
        });
    }
    let factor = qr::QrFactor::new(a)?;
    let (r_lo, r_hi) = factor.r_diag_extrema();
    let r_cond = if r_hi > 0.0 { r_lo / r_hi } else { 0.0 };
    let (coeffs, ridge_fallback, ridge) = match factor.solve_ls(b) {
        Ok(x) => (x, false, 0.0),
        Err(Error::Singular { .. }) => {
            let scale = if r_hi > 0.0 { r_hi } else { 1.0 };
            let floor = f64::EPSILON.powf(0.25) * scale;
            let lambda = floor * floor;
            (cholesky::ridge_solve(a, b, lambda)?, true, lambda)
        }
        Err(e) => return Err(e),
    };
    let pred = a.matvec(&coeffs)?;
    let rss = pred
        .iter()
        .zip(b)
        .map(|(p, y)| (p - y) * (p - y))
        .sum::<f64>();
    Ok(LsFit {
        coeffs,
        rss,
        n_obs: b.len(),
        r_cond,
        ridge_fallback,
        ridge,
    })
}

/// Fits a polynomial of degree `deg` to `(x, y)` samples, returning
/// coefficients in ascending-power order `c0 + c1 x + ...`.
///
/// # Errors
///
/// * [`Error::DimensionMismatch`] if `x.len() != y.len()`.
/// * [`Error::EmptyInput`] if fewer than `deg + 1` samples are given.
pub fn polyfit(x: &[f64], y: &[f64], deg: usize) -> Result<Vec<f64>> {
    if x.len() != y.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("y of length {}", x.len()),
            got: format!("y of length {}", y.len()),
        });
    }
    if x.len() < deg + 1 {
        return Err(Error::EmptyInput);
    }
    let mut a = Matrix::zeros(x.len(), deg + 1);
    for (r, &xi) in x.iter().enumerate() {
        let mut p = 1.0;
        for c in 0..=deg {
            a.set(r, c, p);
            p *= xi;
        }
    }
    Ok(robust_ls(&a, y)?.coeffs)
}

/// Evaluates a polynomial with ascending-power coefficients at `x`.
pub fn polyval(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_ls_plain_case() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 1.0, 2.0];
        let fit = robust_ls(&a, &b).unwrap();
        assert!((fit.coeffs[0] - 1.0).abs() < 1e-12);
        assert!((fit.coeffs[1] - 1.0).abs() < 1e-12);
        assert!(fit.rss < 1e-20);
        assert!(fit.rms() < 1e-10);
        assert!(!fit.ridge_fallback, "healthy data must not need the ridge");
        assert_eq!(fit.ridge, 0.0);
        assert!(fit.r_cond > 0.1, "well-conditioned fit, got {}", fit.r_cond);
    }

    #[test]
    fn robust_ls_survives_dependent_columns() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let b = [2.0, 4.0, 6.0];
        let fit = robust_ls(&a, &b).unwrap();
        // Prediction must still be accurate even though the split between the
        // two coefficients is arbitrary.
        let pred = a.matvec(&fit.coeffs).unwrap();
        for (p, y) in pred.iter().zip(&b) {
            assert!((p - y).abs() < 1e-4);
        }
        // The fallback is surfaced, with a condition-derived ridge.
        assert!(fit.ridge_fallback);
        assert!(fit.ridge > 0.0);
        assert!(fit.r_cond < 1e-12, "dependent columns, got {}", fit.r_cond);
    }

    #[test]
    fn ridge_scales_with_r_diagonal_not_fixed() {
        // The same rank-deficient structure at two very different scales
        // must produce ridges that track max|R_ii|² — the old fixed
        // 1e-10·scale² could sit below the rounding noise of AᵀA for large
        // well-scaled problems and above the signal for tiny ones.
        let small = Matrix::from_rows(&[&[1e-4, 1e-4], &[2e-4, 2e-4], &[3e-4, 3e-4]]).unwrap();
        let big = Matrix::from_rows(&[&[1e4, 1e4], &[2e4, 2e4], &[3e4, 3e4]]).unwrap();
        let fs = robust_ls(&small, &[2e-4, 4e-4, 6e-4]).unwrap();
        let fb = robust_ls(&big, &[2e4, 4e4, 6e4]).unwrap();
        assert!(fs.ridge_fallback && fb.ridge_fallback);
        let ratio = fb.ridge / fs.ridge;
        // Scale ratio is 1e8, so R²-proportional ridges differ by ~1e16.
        assert!(
            (ratio / 1e16 - 1.0).abs() < 1e-6,
            "ridge ratio {ratio:.3e} does not track the R diagonal"
        );
        // Both stay usable.
        let pred = big.matvec(&fb.coeffs).unwrap();
        for (p, y) in pred.iter().zip(&[2e4, 4e4, 6e4]) {
            assert!((p - y).abs() < 1.0);
        }
    }

    #[test]
    fn robust_ls_checks_shape() {
        let a = Matrix::identity(2);
        assert!(robust_ls(&a, &[1.0]).is_err());
    }

    #[test]
    fn polyfit_recovers_cubic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3 - 3.0).collect();
        let truth = [1.0, -2.0, 0.5, 0.25];
        let ys: Vec<f64> = xs.iter().map(|&x| polyval(&truth, x)).collect();
        let c = polyfit(&xs, &ys, 3).unwrap();
        for (a, b) in c.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn polyfit_shape_errors() {
        assert!(polyfit(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(polyfit(&[1.0, 2.0], &[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn polyval_constant_and_empty() {
        assert_eq!(polyval(&[5.0], 100.0), 5.0);
        assert_eq!(polyval(&[], 1.0), 0.0);
    }
}
