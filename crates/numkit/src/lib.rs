//! `numkit` — a small, dependency-light dense numerical kernel.
//!
//! This crate provides the numerical substrate used by the rest of the
//! workspace: a dense row-major [`Matrix`], LU / QR / Cholesky factorizations,
//! linear least squares, 1-D interpolation and basic descriptive statistics.
//!
//! It is deliberately minimal: the dense paths serve the small systems
//! (regression problems with a few thousand rows and tens of columns) with
//! straightforward, auditable algorithms, while [`sparse`] carries the one
//! genuinely scale-sensitive workload — circuit MNA matrices, factored by a
//! left-looking Gilbert–Peierls LU with a fill-reducing ordering so that
//! thousands-of-unknowns systems stay O(flops into the factors). The
//! [`structure`] module adds combinatorial pattern analysis (structural rank
//! via maximum bipartite matching) used by the static lint rules.
//!
//! # Example
//!
//! ```
//! use numkit::{Matrix, lu::LuFactor};
//!
//! # fn main() -> Result<(), numkit::Error> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod interp;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod sparse;
pub mod stats;
pub mod structure;

pub use matrix::Matrix;

/// Errors produced by `numkit` routines.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape.
        expected: String,
        /// Human-readable description of the shape that was provided.
        got: String,
    },
    /// A factorization encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which rank deficiency was detected.
        pivot: usize,
    },
    /// The input matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Column at which a non-positive diagonal was found.
        column: usize,
    },
    /// An empty input was provided where data is required.
    EmptyInput,
    /// Interpolation abscissas are not strictly increasing.
    NonMonotonicAbscissa {
        /// Index of the first offending sample.
        index: usize,
    },
    /// A non-finite (NaN or infinite) value where finite data is required.
    NonFiniteValue {
        /// Index of the first offending sample.
        index: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            Error::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular to working precision at pivot {pivot}"
                )
            }
            Error::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite at column {column}")
            }
            Error::EmptyInput => write!(f, "empty input where data is required"),
            Error::NonMonotonicAbscissa { index } => {
                write!(
                    f,
                    "abscissa values must be strictly increasing at index {index}"
                )
            }
            Error::NonFiniteValue { index } => {
                write!(f, "value at index {index} must be finite")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = Error::Singular { pivot: 3 };
        assert!(e.to_string().contains("singular"));
        let e = Error::DimensionMismatch {
            expected: "3x3".into(),
            got: "2x3".into(),
        };
        assert!(e.to_string().contains("expected 3x3"));
        assert!(Error::EmptyInput.to_string().contains("empty"));
        assert!(Error::NonMonotonicAbscissa { index: 1 }
            .to_string()
            .contains("increasing"));
        assert!(Error::NotPositiveDefinite { column: 0 }
            .to_string()
            .contains("positive definite"));
        assert!(Error::NonFiniteValue { index: 2 }
            .to_string()
            .contains("finite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
