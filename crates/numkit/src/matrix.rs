//! Dense row-major matrix type and elementary operations.

use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f64`.
///
/// The type is intentionally simple: storage is a flat `Vec<f64>` and all
/// indexing is checked in debug builds through the standard slice machinery.
///
/// # Example
///
/// ```
/// use numkit::Matrix;
/// # fn main() -> Result<(), numkit::Error> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] for an empty row set and
    /// [`Error::DimensionMismatch`] if rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(Error::EmptyInput);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(Error::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    got: format!("row {i} of length {}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                got: format!("{} elements", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a column vector (an `n x 1` matrix) from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of all elements.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Extracts column `c` as an owned vector.
    pub fn col_vec(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                got: format!("rhs with {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.add_at(i, j, aik * rhs.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(Error::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                got: format!("vector of length {}", v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(Error::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                got: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy `s * self`.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_in_place(s);
        m
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        for v in &mut self.data {
            *v = 0.0;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (infinity norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// `A^T A` — the Gram matrix of the columns (used by normal equations).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, s);
                g.set(j, i, s);
            }
        }
        g
    }

    /// `A^T v` for `v` of length `rows`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `v.len() != rows`.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(Error::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                got: format!("vector of length {}", v.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let vr = v[r];
            if vr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.5e} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = abc();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col_vec(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let e = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(e, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), Error::EmptyInput);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = abc();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = abc();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_check() {
        let a = abc();
        assert!(a.matmul(&a).is_err());
    }

    #[test]
    fn matvec_known() {
        let m = abc();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn t_matvec_matches_transpose_matvec() {
        let m = abc();
        let v = [2.0, -1.0];
        let direct = m.t_matvec(&v).unwrap();
        let via_t = m.transpose().matvec(&v).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn add_sub_scale() {
        let m = abc();
        let s = m.add(&m).unwrap();
        assert_eq!(s, m.scaled(2.0));
        let d = s.sub(&m).unwrap();
        assert_eq!(d, m);
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let m = abc();
        let g = m.gram();
        assert_eq!(g, g.transpose());
        for i in 0..g.rows() {
            assert!(g.get(i, i) >= 0.0);
        }
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", abc()).is_empty());
    }
}
