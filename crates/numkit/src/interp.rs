//! 1-D interpolation utilities: piecewise-linear functions and resampling.

use crate::{Error, Result};
use serde::{Deserialize, Serialize};

/// A piecewise-linear function defined by strictly increasing breakpoints.
///
/// Outside the breakpoint range the function is extrapolated by holding the
/// boundary value (clamped), which is the conventional behaviour for
/// tabulated device I–V curves (IBIS tables, clamp curves).
///
/// # Example
///
/// ```
/// use numkit::interp::Pwl;
/// # fn main() -> Result<(), numkit::Error> {
/// let f = Pwl::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 10.0])?;
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(-1.0), 0.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pwl {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl Pwl {
    /// Creates a piecewise-linear function.
    ///
    /// # Errors
    ///
    /// * [`Error::EmptyInput`] for empty inputs.
    /// * [`Error::DimensionMismatch`] if `x` and `y` differ in length.
    /// * [`Error::NonFiniteValue`] if a breakpoint is NaN or infinite.
    /// * [`Error::NonMonotonicAbscissa`] if `x` is not strictly increasing.
    pub fn new(x: Vec<f64>, y: Vec<f64>) -> Result<Self> {
        if x.is_empty() {
            return Err(Error::EmptyInput);
        }
        if x.len() != y.len() {
            return Err(Error::DimensionMismatch {
                expected: format!("y of length {}", x.len()),
                got: format!("y of length {}", y.len()),
            });
        }
        // Finiteness first: a NaN abscissa would otherwise slip through the
        // monotonicity comparison below (`NaN <= prev` is false).
        for (i, v) in x.iter().chain(y.iter()).enumerate() {
            if !v.is_finite() {
                return Err(Error::NonFiniteValue { index: i % x.len() });
            }
        }
        for i in 1..x.len() {
            if x[i] <= x[i - 1] {
                return Err(Error::NonMonotonicAbscissa { index: i });
            }
        }
        Ok(Pwl { x, y })
    }

    /// Breakpoint abscissas.
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Breakpoint ordinates.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Index of the right endpoint of the active segment for a finite,
    /// in-range `t`. Shared by [`Pwl::eval`] and [`Pwl::slope`] so the
    /// evaluated segment and the reported slope can never disagree: a query
    /// landing exactly on an interior breakpoint selects the *right*
    /// segment in both.
    fn segment(&self, t: f64) -> usize {
        self.x
            .partition_point(|&v| v <= t)
            .clamp(1, self.x.len() - 1)
    }

    /// Evaluates the function at `t` with clamped extrapolation.
    ///
    /// A NaN query returns NaN (a NaN sample from an upstream solve must
    /// propagate as data, not abort the process).
    pub fn eval(&self, t: f64) -> f64 {
        if t.is_nan() {
            return f64::NAN;
        }
        let n = self.x.len();
        if t <= self.x[0] {
            return self.y[0];
        }
        if t >= self.x[n - 1] {
            return self.y[n - 1];
        }
        let idx = self.segment(t);
        let (x0, x1) = (self.x[idx - 1], self.x[idx]);
        let (y0, y1) = (self.y[idx - 1], self.y[idx]);
        y0 + (y1 - y0) * (t - x0) / (x1 - x0)
    }

    /// Derivative (slope of the segment [`Pwl::eval`] interpolates on);
    /// zero in the clamped regions, NaN for a NaN query. At exact interior
    /// breakpoints both methods use the right segment, so a Newton
    /// linearization `eval(t) + slope(t)·dt` is always consistent.
    pub fn slope(&self, t: f64) -> f64 {
        if t.is_nan() {
            return f64::NAN;
        }
        let n = self.x.len();
        if t < self.x[0] || t > self.x[n - 1] || n == 1 {
            return 0.0;
        }
        let idx = self.segment(t);
        (self.y[idx] - self.y[idx - 1]) / (self.x[idx] - self.x[idx - 1])
    }
}

/// Linearly interpolates `(xs, ys)` at point `x` with clamped extrapolation.
///
/// `xs` must be strictly increasing; this is a checked one-shot convenience
/// wrapper around [`Pwl`]-style lookup without building the struct.
pub fn lerp_at(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if x.is_nan() {
        // NaN escapes both clamp tests; without this guard a single-point
        // table would panic in `clamp(1, 0)` below.
        return f64::NAN;
    }
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[n - 1] {
        return ys[n - 1];
    }
    let idx = xs.partition_point(|&v| v <= x).clamp(1, n - 1);
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// Resamples a sampled signal `(t, y)` onto a uniform grid with step `dt`
/// starting at `t[0]`, using linear interpolation.
///
/// Returns `(t_uniform, y_uniform)`.
///
/// # Errors
///
/// * [`Error::EmptyInput`] if inputs are empty or `dt <= 0`.
/// * [`Error::DimensionMismatch`] if lengths differ.
/// * [`Error::NonMonotonicAbscissa`] if `t` is not strictly increasing.
pub fn resample_uniform(t: &[f64], y: &[f64], dt: f64) -> Result<(Vec<f64>, Vec<f64>)> {
    if t.is_empty() || dt <= 0.0 {
        return Err(Error::EmptyInput);
    }
    if t.len() != y.len() {
        return Err(Error::DimensionMismatch {
            expected: format!("y of length {}", t.len()),
            got: format!("y of length {}", y.len()),
        });
    }
    for i in 1..t.len() {
        if t[i] <= t[i - 1] {
            return Err(Error::NonMonotonicAbscissa { index: i });
        }
    }
    let t0 = t[0];
    let t_end = t[t.len() - 1];
    let n = ((t_end - t0) / dt).floor() as usize + 1;
    let mut tu = Vec::with_capacity(n);
    let mut yu = Vec::with_capacity(n);
    for k in 0..n {
        let tk = t0 + k as f64 * dt;
        tu.push(tk);
        yu.push(lerp_at(t, y, tk));
    }
    Ok((tu, yu))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pwl_eval_and_clamp() {
        let f = Pwl::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap();
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(0.5), 1.0);
        assert_eq!(f.eval(1.0), 2.0);
        assert_eq!(f.eval(2.0), 0.0);
        assert_eq!(f.eval(-5.0), 0.0);
        assert_eq!(f.eval(9.0), -2.0);
        assert_eq!(f.x().len(), 3);
        assert_eq!(f.y().len(), 3);
    }

    #[test]
    fn pwl_slope() {
        let f = Pwl::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap();
        assert_eq!(f.slope(0.5), 2.0);
        assert_eq!(f.slope(2.0), -2.0);
        assert_eq!(f.slope(-1.0), 0.0);
        assert_eq!(f.slope(4.0), 0.0);
    }

    #[test]
    fn nan_query_returns_nan_instead_of_panicking() {
        // Regression: a NaN sample from an upstream solve used to abort via
        // `binary_search_by(.. partial_cmp ..).expect(..)`.
        let f = Pwl::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap();
        assert!(f.eval(f64::NAN).is_nan());
        assert!(f.slope(f64::NAN).is_nan());
        // Single-breakpoint tables are the hardest case (clamp(1, 0) would
        // panic in the segment lookup).
        let g = Pwl::new(vec![1.0], vec![7.0]).unwrap();
        assert!(g.eval(f64::NAN).is_nan());
        assert!(g.slope(f64::NAN).is_nan());
        assert_eq!(g.eval(5.0), 7.0);
        assert!(lerp_at(&[1.0], &[7.0], f64::NAN).is_nan());
        assert!(lerp_at(&[0.0, 1.0], &[0.0, 1.0], f64::NAN).is_nan());
    }

    #[test]
    fn eval_and_slope_agree_at_interior_breakpoints() {
        // Regression: eval (binary_search) and slope (partition_point) used
        // different segment selections, so at an exact breakpoint hit the
        // reported slope could belong to a different segment than the one
        // being evaluated. Both must use the right-hand segment: the
        // first-order model eval(t) + slope(t)·h must match eval(t + h)
        // exactly for small forward steps from the breakpoint.
        let f = Pwl::new(vec![0.0, 1.0, 3.0], vec![0.0, 2.0, -2.0]).unwrap();
        let t = 1.0; // interior breakpoint
        assert_eq!(f.eval(t), 2.0);
        assert_eq!(f.slope(t), -2.0, "right-segment slope at breakpoint");
        let h = 1e-3;
        let lin = f.eval(t) + f.slope(t) * h;
        assert!((lin - f.eval(t + h)).abs() < 1e-12);
        // And strictly inside each segment the pair stays consistent too.
        for &t in &[0.25, 0.75, 1.5, 2.9] {
            let h = 1e-4;
            let lin = f.eval(t) + f.slope(t) * h;
            assert!((lin - f.eval(t + h)).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn pwl_validation() {
        assert!(Pwl::new(vec![], vec![]).is_err());
        assert!(Pwl::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(Pwl::new(vec![0.0, 1.0], vec![1.0]).is_err());
        assert!(Pwl::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn pwl_rejects_non_finite_breakpoints() {
        // Regression: a NaN abscissa used to pass the strictly-increasing
        // check (`NaN <= prev` is false) and build a corrupt table.
        assert_eq!(
            Pwl::new(vec![0.0, f64::NAN, 2.0], vec![0.0, 1.0, 2.0]),
            Err(Error::NonFiniteValue { index: 1 })
        );
        assert!(matches!(
            Pwl::new(vec![0.0, 1.0], vec![0.0, f64::INFINITY]),
            Err(Error::NonFiniteValue { .. })
        ));
        assert!(matches!(
            Pwl::new(vec![f64::NEG_INFINITY, 1.0], vec![0.0, 1.0]),
            Err(Error::NonFiniteValue { .. })
        ));
        assert!(matches!(
            Pwl::new(vec![0.0, 1.0], vec![f64::NAN, 1.0]),
            Err(Error::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn lerp_at_basics() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert_eq!(lerp_at(&xs, &ys, 0.25), 2.5);
        assert_eq!(lerp_at(&xs, &ys, 1.5), 5.0);
        assert_eq!(lerp_at(&xs, &ys, -1.0), 0.0);
        assert_eq!(lerp_at(&xs, &ys, 5.0), 0.0);
        assert_eq!(lerp_at(&[], &[], 1.0), 0.0);
    }

    #[test]
    fn resample_uniform_linear_signal() {
        // A linear signal is reproduced exactly by linear interpolation.
        let t = [0.0, 0.3, 1.0, 1.4, 2.0];
        let y: Vec<f64> = t.iter().map(|&x| 3.0 * x + 1.0).collect();
        let (tu, yu) = resample_uniform(&t, &y, 0.25).unwrap();
        assert_eq!(tu.len(), 9);
        for (tk, yk) in tu.iter().zip(&yu) {
            assert!((yk - (3.0 * tk + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_validation() {
        assert!(resample_uniform(&[], &[], 0.1).is_err());
        assert!(resample_uniform(&[0.0, 1.0], &[0.0], 0.1).is_err());
        assert!(resample_uniform(&[0.0, 1.0], &[0.0, 1.0], 0.0).is_err());
        assert!(resample_uniform(&[1.0, 0.0], &[0.0, 1.0], 0.1).is_err());
    }
}
