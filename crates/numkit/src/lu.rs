//! LU factorization with partial pivoting.

use crate::{Error, Matrix, Result};

/// LU factorization `P A = L U` of a square matrix, with partial pivoting.
///
/// This is the workhorse solver for the circuit simulator's MNA systems.
///
/// # Example
///
/// ```
/// use numkit::{Matrix, lu::LuFactor};
/// # fn main() -> Result<(), numkit::Error> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = LuFactor::new(&a)?.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12 && (x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Number of row swaps (for the determinant sign).
    swaps: usize,
}

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULAR_EPS: f64 = 1e-13;

impl LuFactor {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] if `a` is not square.
    /// * [`Error::Singular`] if a pivot falls below the singularity threshold
    ///   relative to the matrix scale.
    pub fn new(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(Error::DimensionMismatch {
                expected: "square matrix".into(),
                got: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(Error::EmptyInput);
        }
        // Per-column scales: badly scaled but solvable systems (e.g. MNA
        // matrices mixing kilo-siemens diode conductances with unit branch
        // entries) must not be declared singular on their small columns.
        let mut col_scale = vec![f64::MIN_POSITIVE; n];
        for r in 0..n {
            for (c, s) in col_scale.iter_mut().enumerate() {
                *s = s.max(a.get(r, c).abs());
            }
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;

        for k in 0..n {
            // Partial pivoting: find the largest |a_ik| for i >= k.
            let mut p = k;
            let mut best = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < SINGULAR_EPS * col_scale[k] {
                return Err(Error::Singular { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(p, c));
                    lu.set(p, c, tmp);
                }
                perm.swap(k, p);
                swaps += 1;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let m = lu.get(i, k) / pivot;
                lu.set(i, k, m);
                if m != 0.0 {
                    for c in (k + 1)..n {
                        lu.add_at(i, c, -m * lu.get(k, c));
                    }
                }
            }
        }
        Ok(LuFactor { lu, perm, swaps })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Row permutation chosen by partial pivoting: `perm()[i]` is the
    /// original row stored at position `i` of the factorization. Used by
    /// [`crate::sparse::SparseLu`] to freeze a pivot sequence discovered on
    /// a representative matrix.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(Error::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                got: format!("rhs of length {}", b.len()),
            });
        }
        // Apply permutation, then forward substitution (unit lower).
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.lu.get(i, k) * y[k];
            }
            y[i] = s;
        }
        // Back substitution (upper).
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.lu.get(i, k) * y[k];
            }
            y[i] = s / self.lu.get(i, i);
        }
        Ok(y)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.dim() {
            d *= self.lu.get(i, i);
        }
        d
    }
}

/// One-shot solve of `A x = b` (factors and discards).
///
/// # Errors
///
/// Propagates errors from [`LuFactor::new`] and [`LuFactor::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuFactor::new(a)?.solve(b)
}

/// Inverse of a square matrix (column-by-column solve).
///
/// # Errors
///
/// Propagates errors from [`LuFactor::new`].
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    let lu = LuFactor::new(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for c in 0..n {
        e[c] = 1.0;
        let col = lu.solve(&e)?;
        e[c] = 0.0;
        for r in 0..n {
            inv.set(r, c, col[r]);
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[3.0, 4.0, 4.0], &[5.0, 6.0, 3.0]]).unwrap();
        let b = [3.0, 7.0, 8.0];
        let x = solve(&a, &b).unwrap();
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn requires_pivoting() {
        // Zero on the (0,0) position forces a swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 5.0]).unwrap();
        assert_eq!(x, vec![5.0, 2.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(LuFactor::new(&a), Err(Error::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(LuFactor::new(&a).is_err());
    }

    #[test]
    fn rejects_empty() {
        let a = Matrix::zeros(0, 0);
        assert!(LuFactor::new(&a).is_err());
    }

    #[test]
    fn rhs_length_checked() {
        let a = Matrix::identity(3);
        let lu = LuFactor::new(&a).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        assert!((lu.det() + 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.0, 3.0, 1.0], &[1.0, 0.0, 2.0]]).unwrap();
        let inv = inverse(&a).unwrap();
        let prod = inv.matmul(&a).unwrap();
        let i = Matrix::identity(3);
        assert!(prod.sub(&i).unwrap().max_abs() < 1e-12);
    }
}
