//! Descriptive statistics for waveform and residual analysis.

/// Arithmetic mean; zero for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Population variance; zero for slices shorter than 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
}

/// Root-mean-square value; zero for an empty slice.
pub fn rms(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
}

/// Maximum absolute value; zero for an empty slice.
pub fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Minimum value; `+inf` for an empty slice.
pub fn min(v: &[f64]) -> f64 {
    v.iter().fold(f64::INFINITY, |m, &x| m.min(x))
}

/// Maximum value; `-inf` for an empty slice.
pub fn max(v: &[f64]) -> f64 {
    v.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x))
}

/// Median of a slice (averaging the two middle values for even lengths);
/// zero for an empty slice. Not-a-number values are sorted last.
pub fn median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less));
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        0.5 * (s[n / 2 - 1] + s[n / 2])
    }
}

/// Median by partial selection, reordering `v` in place; zero for an empty
/// slice. Not-a-number values order last (as in [`median`]).
///
/// Produces the same value as [`median`] — including the two-middle average
/// for even lengths — without sorting the whole slice: one
/// `select_nth_unstable_by` pass places the upper middle, and for even
/// lengths the lower middle is the maximum of the partition below it.
pub fn median_inplace(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let n = v.len();
    let order = |a: &f64, b: &f64| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Less);
    let (below, upper_mid, _) = v.select_nth_unstable_by(n / 2, order);
    if n % 2 == 1 {
        *upper_mid
    } else {
        let lower_mid = below
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, |m, x| if x > m { x } else { m });
        0.5 * (lower_mid + *upper_mid)
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice.
///
/// Uses the classic nearest-rank definition: for quantile `q` in `(0, 1]`
/// the result is element `ceil(q * n)` (1-based) of the sorted data — an
/// actual sample, never an interpolated value. `q <= 0` returns the first
/// element, `q >= 1` the last, and an empty slice returns zero. Callers are
/// responsible for sorting; not-a-number handling follows whatever order
/// the caller established.
pub fn percentile_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(n - 1)]
}

/// Root-mean-square error between two equally long signals.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse requires equal-length inputs");
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (ss / a.len() as f64).sqrt()
}

/// Normalized mean-square error `||a - b||^2 / ||b - mean(b)||^2`.
///
/// A value of 0 is a perfect match; 1 means the model is no better than the
/// mean of the reference. Returns `+inf` when the reference is constant but
/// the signals differ.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "nmse requires equal-length inputs");
    if a.is_empty() {
        return 0.0;
    }
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let mb = mean(b);
    let den: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_rms() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert!((variance(&v) - 1.25).abs() < 1e-15);
        assert!((rms(&[3.0, 4.0]) - (12.5_f64).sqrt()).abs() < 1e-15);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn extrema() {
        let v = [-3.0, 1.0, 2.0];
        assert_eq!(max_abs(&v), 3.0);
        assert_eq!(min(&v), -3.0);
        assert_eq!(max(&v), 2.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_inplace_matches_sorting_median() {
        // Deterministic LCG inputs; equivalence must hold bit-for-bit.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        for n in [1usize, 2, 3, 4, 5, 8, 13, 64, 101, 256] {
            let v: Vec<f64> = (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
                })
                .collect();
            let by_sort = median(&v);
            let mut scratch = v.clone();
            let by_select = median_inplace(&mut scratch);
            assert_eq!(by_select.to_bits(), by_sort.to_bits(), "n={n}");
        }
        assert_eq!(median_inplace(&mut []), 0.0);
        assert_eq!(median_inplace(&mut [7.0]), 7.0);
        assert_eq!(median_inplace(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_nearest_rank_known_answers() {
        // Wikipedia's canonical nearest-rank example: scores
        // {15, 20, 35, 40, 50}, P30 -> 20, P40 -> 20, P50 -> 35,
        // P100 -> 50.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile_nearest_rank(&v, 0.30), 20.0);
        assert_eq!(percentile_nearest_rank(&v, 0.40), 20.0);
        assert_eq!(percentile_nearest_rank(&v, 0.50), 35.0);
        assert_eq!(percentile_nearest_rank(&v, 1.00), 50.0);
        // Rank 1 floor: tiny quantiles still return a real sample.
        assert_eq!(percentile_nearest_rank(&v, 0.0), 15.0);
        assert_eq!(percentile_nearest_rank(&v, 1e-9), 15.0);
        // Out-of-range q clamps instead of indexing out of bounds.
        assert_eq!(percentile_nearest_rank(&v, 1.5), 50.0);
        assert_eq!(percentile_nearest_rank(&v, -0.5), 15.0);
        // Degenerate sizes.
        assert_eq!(percentile_nearest_rank(&[], 0.5), 0.0);
        assert_eq!(percentile_nearest_rank(&[7.0], 0.01), 7.0);
        assert_eq!(percentile_nearest_rank(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_nearest_rank_always_a_sample() {
        // Whatever q is, the result must be one of the input values.
        let v: Vec<f64> = (0..17).map(|i| i as f64 * 0.5).collect();
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let p = percentile_nearest_rank(&v, q);
            assert!(v.contains(&p), "q={q} gave non-sample {p}");
        }
    }

    #[test]
    fn rmse_nmse() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(nmse(&a, &a), 0.0);
        let b = [1.0, 2.0, 4.0];
        assert!(rmse(&a, &b) > 0.0);
        assert!(nmse(&a, &b) > 0.0);
        // Constant reference, differing signal -> infinity.
        assert_eq!(nmse(&[1.0, 2.0], &[0.0, 0.0]), f64::INFINITY);
        assert_eq!(nmse(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_length_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }
}
