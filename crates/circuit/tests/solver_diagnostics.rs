//! Solver workspace diagnostics: the symbolic LU analysis must be computed
//! once per circuit and reused across the DC operating point and every
//! transient timestep.

use circuit::devices::{Capacitor, Diode, DiodeParams, Resistor, SourceWaveform, VoltageSource};
use circuit::{Circuit, TranParams, GROUND};

/// A 12-node RC ladder: large enough for the sparse solver path, values
/// stable enough that the pivot order chosen at DC stays valid for every
/// transient step.
fn rc_ladder(n_sections: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let mut prev = ckt.node("in");
    ckt.add(VoltageSource::new(
        "vs",
        prev,
        GROUND,
        SourceWaveform::step(0.0, 1.0, 1e-10),
    ));
    for k in 0..n_sections {
        let next = ckt.node(format!("n{k}"));
        ckt.add(Resistor::new(format!("r{k}"), prev, next, 100.0));
        ckt.add(Capacitor::new(format!("c{k}"), next, GROUND, 1e-12));
        prev = next;
    }
    ckt
}

#[test]
fn transient_performs_one_symbolic_analysis() {
    let mut ckt = rc_ladder(12);
    let res = ckt.transient(TranParams::new(1e-11, 2e-9)).unwrap();
    let stats = res.solve_stats;
    assert_eq!(
        stats.symbolic_analyses,
        1,
        "the stamp pattern never changes: exactly one symbolic analysis \
         must cover the DC operating point and all {} steps",
        res.len() - 1
    );
    // Every Newton iteration refactors once; the DC solve adds its own
    // iterations on top of the transient ones.
    assert!(
        stats.factorizations >= res.total_newton_iterations,
        "factorizations {} < newton iterations {}",
        stats.factorizations,
        res.total_newton_iterations
    );
    assert!(
        stats.factorizations >= res.len() - 1,
        "at least one factorization per timestep"
    );
}

#[test]
fn nonlinear_circuit_reanalyses_only_on_pivot_decay() {
    // Diodes swing their conductance over decades during the edge; the
    // workspace may legitimately re-pivot a handful of times, but must
    // never fall back to per-iteration symbolic analysis.
    let mut ckt = rc_ladder(10);
    let pad = ckt.node("pad");
    ckt.add(Resistor::new("rpad", GROUND, pad, 1e3));
    ckt.add(Diode::new("dclamp", pad, GROUND, DiodeParams::default()));
    let res = ckt.transient(TranParams::new(1e-11, 2e-9)).unwrap();
    let stats = res.solve_stats;
    assert!(
        stats.symbolic_analyses <= 4,
        "symbolic analyses {} should stay far below the {} factorizations",
        stats.symbolic_analyses,
        stats.factorizations
    );
    assert!(stats.factorizations >= res.total_newton_iterations);
}

#[test]
fn repeated_dc_solves_share_one_workspace() {
    // The sweep-harness usage: one workspace, many DC solves with changed
    // source values — still a single symbolic analysis.
    let mut ckt = rc_ladder(8);
    let mut ws = ckt.make_workspace();
    let mut prev: Option<Vec<f64>> = None;
    for _ in 0..10 {
        let x = ckt.dc_operating_point_ws(&mut ws, prev.as_deref()).unwrap();
        prev = Some(x);
    }
    assert_eq!(ws.stats().symbolic_analyses, 1);
    assert!(ws.stats().factorizations >= 10);
}
