//! Property-based tests of simulator invariants.

use circuit::devices::{Capacitor, Resistor, SourceWaveform, VoltageSource};
use circuit::{Circuit, TranParams, GROUND};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A resistive ladder driven by a DC source: every node voltage lies
    /// between the rails (discrete maximum principle / passivity).
    #[test]
    fn resistive_ladder_voltages_bounded(
        rs in prop::collection::vec(1.0f64..10e3, 2..8),
        v_src in 0.1f64..10.0,
    ) {
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.add(VoltageSource::new("v", top, GROUND, SourceWaveform::dc(v_src)));
        let mut prev = top;
        for (k, r) in rs.iter().enumerate() {
            let n = ckt.node(format!("n{k}"));
            ckt.add(Resistor::new(format!("r{k}"), prev, n, *r));
            // Shunt to ground so the ladder divides.
            ckt.add(Resistor::new(format!("g{k}"), n, GROUND, 2.0 * *r));
            prev = n;
        }
        let x = ckt.dc_operating_point().unwrap();
        for v in &x[..ckt.n_nodes() - 1] {
            prop_assert!(*v >= -1e-9 && *v <= v_src + 1e-9, "voltage {} escapes rails", v);
        }
    }

    /// RC relaxation from an initial condition decays monotonically to zero
    /// and never goes negative (trapezoidal rule is A-stable and the step
    /// here is well inside the oscillation-free region).
    #[test]
    fn rc_discharge_monotone(
        r in 10.0f64..10e3,
        c in 1e-12f64..1e-9,
        v0 in 0.1f64..5.0,
    ) {
        let tau = r * c;
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(Capacitor::new("c", n, GROUND, c).with_ic(v0));
        ckt.add(Resistor::new("r", n, GROUND, r));
        let res = ckt
            .transient(TranParams::new(tau / 100.0, 5.0 * tau).with_skip_dc())
            .unwrap();
        let v = res.voltage(n);
        // Skip the t = 0 snapshot: with `skip_dc` it is the all-zero start
        // vector; the capacitor initial condition engages from step 1.
        let mut prev = f64::INFINITY;
        for &val in &v.values()[1..] {
            prop_assert!(val <= prev + 1e-12, "discharge must be monotone");
            prop_assert!(val >= -1e-9, "voltage must stay non-negative");
            prev = val;
        }
        // 1 tau point within 2 % of the analytic value.
        let at_tau = v.sample_at(tau);
        prop_assert!((at_tau - v0 * (-1.0f64).exp()).abs() < 0.02 * v0);
    }

    /// Superposition on a linear network: the response to the sum of two DC
    /// sources equals the sum of individual responses.
    #[test]
    fn linear_superposition(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        r1 in 10.0f64..1e3,
        r2 in 10.0f64..1e3,
        r3 in 10.0f64..1e3,
    ) {
        let solve = |va: f64, vb: f64| -> f64 {
            let mut ckt = Circuit::new();
            let na = ckt.node("a");
            let nb = ckt.node("b");
            let nm = ckt.node("m");
            ckt.add(VoltageSource::new("va", na, GROUND, SourceWaveform::dc(va)));
            ckt.add(VoltageSource::new("vb", nb, GROUND, SourceWaveform::dc(vb)));
            ckt.add(Resistor::new("r1", na, nm, r1));
            ckt.add(Resistor::new("r2", nb, nm, r2));
            ckt.add(Resistor::new("r3", nm, GROUND, r3));
            let x = ckt.dc_operating_point().unwrap();
            x[nm.index() - 1]
        };
        let full = solve(v1, v2);
        let partial = solve(v1, 0.0) + solve(0.0, v2);
        prop_assert!((full - partial).abs() < 1e-9, "{} vs {}", full, partial);
    }

    /// Waveform measurement invariance: shifting a waveform in time shifts
    /// every threshold crossing by exactly that amount.
    #[test]
    fn crossing_shift_invariance(shift in 0.0f64..1.0, th in -0.5f64..0.5) {
        let t: Vec<f64> = (0..400).map(|k| k as f64 * 0.01).collect();
        let y: Vec<f64> = t.iter().map(|&x| (x * 3.0).sin()).collect();
        let w1 = circuit::Waveform::from_parts(t.clone(), y.clone());
        let t2: Vec<f64> = t.iter().map(|&x| x + shift).collect();
        let w2 = circuit::Waveform::from_parts(t2, y);
        let c1 = w1.threshold_crossings(th);
        let c2 = w2.threshold_crossings(th);
        prop_assert_eq!(c1.len(), c2.len());
        for (a, b) in c1.iter().zip(&c2) {
            prop_assert!((b.time - a.time - shift).abs() < 1e-9);
            prop_assert_eq!(a.rising, b.rising);
        }
    }
}
