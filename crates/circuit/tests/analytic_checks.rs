//! Integration tests of the simulator against closed-form circuit theory.

use circuit::devices::{
    Capacitor, CurrentSource, Diode, DiodeParams, IdealLine, Inductor, MosPolarity, Mosfet,
    MosfetParams, Resistor, SourceWaveform, VoltageSource,
};
use circuit::{Circuit, TranParams, GROUND};

/// Series RLC step response: underdamped ringing frequency and decay match
/// the analytic damped resonance.
#[test]
fn rlc_ringing_frequency() {
    let (r, l, c) = (5.0_f64, 100e-9_f64, 10e-12_f64);
    let w0 = 1.0 / (l * c).sqrt();
    let alpha = r / (2.0 * l);
    let wd = (w0 * w0 - alpha * alpha).sqrt();
    let f_ring = wd / (2.0 * std::f64::consts::PI);

    let mut ckt = Circuit::new();
    let nin = ckt.node("in");
    let nmid = ckt.node("mid");
    let nout = ckt.node("out");
    ckt.add(VoltageSource::new(
        "v",
        nin,
        GROUND,
        SourceWaveform::step(0.0, 1.0, 1e-12),
    ));
    ckt.add(Resistor::new("r", nin, nmid, r));
    ckt.add(Inductor::new("l", nmid, nout, l));
    ckt.add(Capacitor::new("c", nout, GROUND, c));
    let period = 1.0 / f_ring;
    let res = ckt
        .transient(TranParams::new(period / 200.0, 6.0 * period))
        .unwrap();
    let v = res.voltage(nout);

    // Measure the ringing period from successive upward crossings of 1 V.
    let crossings = v.threshold_crossings(1.0);
    let ups: Vec<f64> = crossings
        .iter()
        .filter(|c| c.rising)
        .map(|c| c.time)
        .collect();
    assert!(ups.len() >= 3, "expected several ringing periods");
    let t_meas = ups[2] - ups[1];
    assert!(
        (t_meas - period).abs() < 0.02 * period,
        "period {t_meas:.3e} vs analytic {period:.3e}"
    );

    // Peak overshoot of the underdamped response: 1 + exp(-alpha*pi/wd).
    let peak_analytic = 1.0 + (-alpha * std::f64::consts::PI / wd).exp();
    let peak_meas = v.values().iter().fold(0.0_f64, |m, &x| m.max(x));
    assert!(
        (peak_meas - peak_analytic).abs() < 0.03,
        "peak {peak_meas:.3} vs analytic {peak_analytic:.3}"
    );
}

/// Mismatched line: successive near-end steps follow the reflection-ladder
/// (bounce diagram) values.
#[test]
fn bounce_diagram_levels() {
    let z0 = 50.0;
    let rs = 25.0; // source mismatch
    let rl = 100.0; // load mismatch
    let td = 1e-9;
    let gamma_s: f64 = (rs - z0) / (rs + z0); // -1/3
    let gamma_l: f64 = (rl - z0) / (rl + z0); // +1/3
    let v_launch = z0 / (rs + z0); // 2/3

    let mut ckt = Circuit::new();
    let nsrc = ckt.node("src");
    let nin = ckt.node("in");
    let nout = ckt.node("out");
    ckt.add(VoltageSource::new(
        "v",
        nsrc,
        GROUND,
        SourceWaveform::step(0.0, 1.0, 1e-12),
    ));
    ckt.add(Resistor::new("rs", nsrc, nin, rs));
    ckt.add(IdealLine::new("t", nin, GROUND, nout, GROUND, z0, td));
    ckt.add(Resistor::new("rl", nout, GROUND, rl));
    let res = ckt.transient(TranParams::new(2e-11, 7e-9)).unwrap();
    let vin = res.voltage(nin);
    let vout = res.voltage(nout);

    // t in (0, 2Td): near end at the launch voltage.
    assert!((vin.sample_at(1.0e-9) - v_launch).abs() < 2e-3);
    // Far end after Td: launch * (1 + gamma_l).
    let vfe1 = v_launch * (1.0 + gamma_l);
    assert!((vout.sample_at(1.5e-9) - vfe1).abs() < 2e-3);
    // Near end after 2Td: + reflected wave and its source re-reflection.
    let vne2 = v_launch * (1.0 + gamma_l + gamma_l * gamma_s);
    assert!((vin.sample_at(2.5e-9) - vne2).abs() < 2e-3);
    // Steady state: plain resistive divider.
    let v_inf = rl / (rl + rs);
    assert!((vout.sample_at(6.8e-9) - v_inf).abs() < 5e-3);
}

/// A diode half-wave rectifier: output follows source minus one diode drop
/// on positive half-cycles and holds on the RC during negative ones.
#[test]
fn diode_rectifier() {
    let mut ckt = Circuit::new();
    let nin = ckt.node("in");
    let nout = ckt.node("out");
    // 10 MHz sine approximated by PWL over one period.
    let n = 100;
    let period = 100e-9;
    let t: Vec<f64> = (0..=n).map(|k| k as f64 * period / n as f64).collect();
    let y: Vec<f64> = t
        .iter()
        .map(|&tt| 3.0 * (2.0 * std::f64::consts::PI * tt / period).sin())
        .collect();
    let pwl = numkit::interp::Pwl::new(t, y).unwrap();
    ckt.add(VoltageSource::new(
        "v",
        nin,
        GROUND,
        SourceWaveform::Pwl(pwl),
    ));
    ckt.add(Diode::new("d", nin, nout, DiodeParams::default()));
    ckt.add(Resistor::new("rl", nout, GROUND, 10e3));
    ckt.add(Capacitor::new("cl", nout, GROUND, 20e-12));
    let res = ckt.transient(TranParams::new(0.2e-9, period)).unwrap();
    let v = res.voltage(nout);
    // Peak output: source peak minus a diode drop.
    let peak = v.values().iter().fold(0.0_f64, |m, &x| m.max(x));
    assert!(peak > 2.2 && peak < 2.8, "rectified peak {peak}");
    // During the negative half-cycle the RC (tau = 200 ns) barely droops.
    let v_mid_neg = v.sample_at(0.75 * period);
    assert!(v_mid_neg > 0.6 * peak, "hold voltage {v_mid_neg}");
}

/// CMOS inverter DC transfer: output swings rail to rail and crosses
/// mid-supply near the symmetric switching point.
#[test]
fn cmos_inverter_vtc() {
    let vdd = 1.8;
    let np = MosfetParams {
        vt0: 0.4,
        kp: 200e-6,
        w: 4e-6,
        l: 1e-6,
        lambda: 0.02,
    };
    let pp = MosfetParams {
        vt0: -0.4,
        kp: 100e-6,
        w: 8e-6,
        l: 1e-6,
        lambda: 0.02,
    };
    let out_at = |vin: f64| -> f64 {
        let mut ckt = Circuit::new();
        let nvdd = ckt.node("vdd");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add(VoltageSource::new(
            "vs",
            nvdd,
            GROUND,
            SourceWaveform::dc(vdd),
        ));
        ckt.add(VoltageSource::new(
            "vi",
            nin,
            GROUND,
            SourceWaveform::dc(vin),
        ));
        ckt.add(Mosfet::new("mn", nout, nin, GROUND, MosPolarity::Nmos, np));
        ckt.add(Mosfet::new("mp", nout, nin, nvdd, MosPolarity::Pmos, pp));
        ckt.add(Resistor::new("rl", nout, GROUND, 1e9));
        let x = ckt.dc_operating_point().unwrap();
        x[nout.index() - 1]
    };
    assert!(
        out_at(0.0) > vdd - 0.01,
        "logic-low input gives rail-high out"
    );
    assert!(out_at(vdd) < 0.01, "logic-high input gives rail-low out");
    // Monotone decreasing transfer curve.
    let mut prev = f64::INFINITY;
    for k in 0..=12 {
        let v = out_at(vdd * k as f64 / 12.0);
        assert!(v <= prev + 1e-6, "VTC must be monotone");
        prev = v;
    }
    // Beta-matched inverter: switching threshold near vdd/2.
    let v_half = out_at(vdd / 2.0);
    assert!(
        v_half > 0.2 * vdd && v_half < 0.8 * vdd,
        "mid-supply output {v_half}"
    );
}

/// Charge conservation: a current pulse into a floating capacitor leaves
/// exactly Q = I*t of charge.
#[test]
fn capacitor_charge_conservation() {
    let c = 1e-9;
    let i0 = 1e-3;
    let t_on = 1e-6;
    let mut ckt = Circuit::new();
    let n = ckt.node("top");
    ckt.add(CurrentSource::new(
        "i",
        GROUND,
        n,
        SourceWaveform::Pulse {
            low: 0.0,
            high: i0,
            delay: 0.0,
            rise: 1e-9,
            width: t_on,
            fall: 1e-9,
        },
    ));
    ckt.add(Capacitor::new("c", n, GROUND, c));
    // Large bleed to keep the DC solvable; negligible during the pulse.
    ckt.add(Resistor::new("rb", n, GROUND, 1e9));
    let res = ckt.transient(TranParams::new(2e-9, 1.2 * t_on)).unwrap();
    let v_end = res.voltage(n).sample_at(1.15 * t_on);
    let expect = i0 * (t_on + 1e-9) / c; // trapezoid area / C
    assert!(
        (v_end - expect).abs() < 0.01 * expect,
        "v_end {v_end} vs Q/C {expect}"
    );
}

/// The transient Newton iteration count stays bounded for a stiff
/// nonlinear circuit (regression guard on solver behaviour).
#[test]
fn newton_iteration_budget() {
    let mut ckt = Circuit::new();
    let nin = ckt.node("in");
    let nout = ckt.node("out");
    ckt.add(VoltageSource::new(
        "v",
        nin,
        GROUND,
        SourceWaveform::Pulse {
            low: -2.0,
            high: 2.0,
            delay: 1e-9,
            rise: 0.2e-9,
            width: 3e-9,
            fall: 0.2e-9,
        },
    ));
    ckt.add(Resistor::new("rs", nin, nout, 100.0));
    ckt.add(Diode::new("d1", nout, GROUND, DiodeParams::default()));
    ckt.add(Diode::new("d2", GROUND, nout, DiodeParams::esd_clamp()));
    ckt.add(Capacitor::new("c", nout, GROUND, 1e-12));
    let res = ckt.transient(TranParams::new(10e-12, 6e-9)).unwrap();
    let steps = res.len() - 1;
    let avg = res.total_newton_iterations as f64 / steps as f64;
    assert!(avg < 12.0, "average Newton iterations {avg:.1} too high");
}
