//! Sampled waveforms and signal-integrity measurements.

use numkit::interp;
use serde::{Deserialize, Serialize};

/// A sampled real-valued waveform `y(t)` on a strictly increasing time axis.
///
/// Waveforms are the lingua franca between the simulator, the identification
/// code and the validation metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Waveform {
    t: Vec<f64>,
    y: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (internal construction error).
    pub fn from_parts(t: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(t.len(), y.len(), "time and value lengths differ");
        Waveform { t, y }
    }

    /// An empty waveform.
    pub fn empty() -> Self {
        Waveform {
            t: Vec::new(),
            y: Vec::new(),
        }
    }

    /// Time axis.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.y
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the waveform has no samples.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Linear interpolation at time `t` (clamped outside the range).
    pub fn sample_at(&self, t: f64) -> f64 {
        interp::lerp_at(&self.t, &self.y, t)
    }

    /// Resamples onto a uniform grid with step `dt` starting at the first
    /// time point.
    ///
    /// # Errors
    ///
    /// Propagates [`numkit::Error`] for invalid inputs.
    pub fn resample(&self, dt: f64) -> Result<Waveform, numkit::Error> {
        let (t, y) = interp::resample_uniform(&self.t, &self.y, dt)?;
        Ok(Waveform { t, y })
    }

    /// Returns the sub-waveform on `[t0, t1]` (inclusive of samples inside).
    pub fn window(&self, t0: f64, t1: f64) -> Waveform {
        let mut t = Vec::new();
        let mut y = Vec::new();
        for (tk, yk) in self.t.iter().zip(&self.y) {
            if *tk >= t0 && *tk <= t1 {
                t.push(*tk);
                y.push(*yk);
            }
        }
        Waveform { t, y }
    }

    /// Applies a function to every sample, returning a new waveform.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Waveform {
        Waveform {
            t: self.t.clone(),
            y: self.y.iter().map(|&v| f(v)).collect(),
        }
    }

    /// All times at which the waveform crosses `threshold`, found by linear
    /// interpolation between adjacent samples. Each crossing is annotated
    /// with its direction.
    pub fn threshold_crossings(&self, threshold: f64) -> Vec<Crossing> {
        let mut out = Vec::new();
        for k in 1..self.t.len() {
            let (y0, y1) = (self.y[k - 1], self.y[k]);
            let below0 = y0 < threshold;
            let below1 = y1 < threshold;
            if below0 != below1 {
                let frac = (threshold - y0) / (y1 - y0);
                let t = self.t[k - 1] + frac * (self.t[k] - self.t[k - 1]);
                out.push(Crossing {
                    time: t,
                    rising: below0,
                });
            }
        }
        out
    }
}

/// A threshold crossing event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// Interpolated crossing time (seconds).
    pub time: f64,
    /// `true` for a rising crossing (below → above).
    pub rising: bool,
}

/// Maximum timing error between two waveforms measured at the crossings of
/// `threshold`: each crossing of `a` is matched to the nearest same-direction
/// crossing of `b` and the largest |Δt| is returned.
///
/// This is the accuracy metric of the paper's Section 5 ("timing errors ...
/// measured at the crossing of a suitable voltage threshold").
///
/// Returns `None` when either waveform has no crossing of the threshold.
pub fn timing_error(a: &Waveform, b: &Waveform, threshold: f64) -> Option<f64> {
    let ca = a.threshold_crossings(threshold);
    let cb = b.threshold_crossings(threshold);
    if ca.is_empty() || cb.is_empty() {
        return None;
    }
    let mut worst = 0.0_f64;
    for xa in &ca {
        let best = cb
            .iter()
            .filter(|xb| xb.rising == xa.rising)
            .map(|xb| (xb.time - xa.time).abs())
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            worst = worst.max(best);
        }
    }
    if worst == 0.0 && ca.len() != cb.len() {
        // Different crossing counts with zero matched error still means the
        // waveforms disagree; report the mismatch conservatively.
        return Some(f64::INFINITY);
    }
    Some(worst)
}

/// Root-mean-square difference between two waveforms compared on the time
/// axis of `a` (values of `b` are interpolated).
pub fn rms_difference(a: &Waveform, b: &Waveform) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let ss: f64 = a
        .times()
        .iter()
        .zip(a.values())
        .map(|(&t, &ya)| {
            let yb = b.sample_at(t);
            (ya - yb) * (ya - yb)
        })
        .sum();
    (ss / a.len() as f64).sqrt()
}

/// Maximum absolute difference between two waveforms on the axis of `a`.
pub fn max_difference(a: &Waveform, b: &Waveform) -> f64 {
    a.times()
        .iter()
        .zip(a.values())
        .map(|(&t, &ya)| (ya - b.sample_at(t)).abs())
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        let t: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let y = t.clone();
        Waveform::from_parts(t, y)
    }

    #[test]
    fn basic_accessors() {
        let w = ramp();
        assert_eq!(w.len(), 11);
        assert!(!w.is_empty());
        assert!(Waveform::empty().is_empty());
        assert_eq!(w.sample_at(2.5), 2.5);
        assert_eq!(w.sample_at(-1.0), 0.0);
        assert_eq!(w.sample_at(99.0), 10.0);
    }

    #[test]
    fn window_and_map() {
        let w = ramp();
        let sub = w.window(2.0, 4.0);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.values(), &[2.0, 3.0, 4.0]);
        let neg = w.map(|v| -v);
        assert_eq!(neg.values()[10], -10.0);
    }

    #[test]
    fn resample_works() {
        let w = ramp();
        let r = w.resample(0.5).unwrap();
        assert_eq!(r.len(), 21);
        assert_eq!(r.sample_at(3.25), 3.25);
    }

    #[test]
    fn crossings_rising_falling() {
        let t: Vec<f64> = (0..=4).map(|i| i as f64).collect();
        let y = vec![0.0, 1.0, 0.0, 1.0, 0.0];
        let w = Waveform::from_parts(t, y);
        let c = w.threshold_crossings(0.5);
        assert_eq!(c.len(), 4);
        assert!(c[0].rising && !c[1].rising && c[2].rising && !c[3].rising);
        assert!((c[0].time - 0.5).abs() < 1e-12);
        assert!((c[1].time - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timing_error_of_shifted_copy() {
        let t: Vec<f64> = (0..200).map(|i| i as f64 * 0.01).collect();
        let y: Vec<f64> = t.iter().map(|&x| ((x - 0.5) * 10.0).tanh()).collect();
        let a = Waveform::from_parts(t.clone(), y);
        let y2: Vec<f64> = t.iter().map(|&x| ((x - 0.53) * 10.0).tanh()).collect();
        let b = Waveform::from_parts(t, y2);
        let te = timing_error(&a, &b, 0.0).unwrap();
        assert!((te - 0.03).abs() < 1e-3, "timing error {te}");
    }

    #[test]
    fn timing_error_none_without_crossings() {
        let w = ramp();
        let flat = w.map(|_| 0.0);
        assert!(timing_error(&flat, &w, 100.0).is_none());
    }

    #[test]
    fn rms_and_max_difference() {
        let a = ramp();
        let b = a.map(|v| v + 1.0);
        assert!((rms_difference(&a, &b) - 1.0).abs() < 1e-12);
        assert!((max_difference(&a, &b) - 1.0).abs() < 1e-12);
        assert_eq!(rms_difference(&Waveform::empty(), &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn from_parts_checks_lengths() {
        Waveform::from_parts(vec![0.0], vec![]);
    }
}
