//! Level-1 (Shichman–Hodges) MOSFET.

use crate::mna::{stamp_current_leaving, EvalCtx};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;

/// MOSFET channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Level-1 MOSFET parameters.
///
/// Gate capacitances are *not* part of this device; reference-device
/// builders add explicit [`super::Capacitor`] elements for Cgs/Cgd/Cdb so
/// that the charge bookkeeping stays in one well-tested place.
#[derive(Debug, Clone, Copy)]
pub struct MosfetParams {
    /// Zero-bias threshold voltage (positive for NMOS, negative for PMOS).
    pub vt0: f64,
    /// Process transconductance `KP = mu Cox` (A/V²).
    pub kp: f64,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
}

impl MosfetParams {
    /// Validates the parameter set.
    fn check(&self) {
        assert!(
            self.kp > 0.0 && self.w > 0.0 && self.l > 0.0 && self.lambda >= 0.0,
            "non-physical MOSFET parameters"
        );
    }

    /// Device transconductance factor `beta = KP W / L` (A/V²).
    pub fn beta(&self) -> f64 {
        self.kp * self.w / self.l
    }
}

/// A Level-1 MOSFET (drain, gate, source terminals; bulk is tied to source).
///
/// The model handles `vds < 0` by internally swapping drain and source, so
/// the device is symmetric like the underlying physics.
#[derive(Debug, Clone)]
pub struct Mosfet {
    label: String,
    d: Node,
    g: Node,
    s: Node,
    polarity: MosPolarity,
    p: MosfetParams,
}

impl Mosfet {
    /// Creates a MOSFET with the given terminals and parameters.
    ///
    /// # Panics
    ///
    /// Panics on non-physical parameters (see [`MosfetParams`]).
    pub fn new(
        label: impl Into<String>,
        d: Node,
        g: Node,
        s: Node,
        polarity: MosPolarity,
        p: MosfetParams,
    ) -> Self {
        p.check();
        Mosfet {
            label: label.into(),
            d,
            g,
            s,
            polarity,
            p,
        }
    }

    /// Static drain current and small-signal parameters at the given
    /// terminal voltages (NMOS convention, vds >= 0 handled internally).
    ///
    /// Returns `(id, gm, gds)` where `id` flows from drain to source for
    /// NMOS (source to drain for PMOS after polarity mapping).
    pub fn dc_current(&self, vgs_ext: f64, vds_ext: f64) -> (f64, f64, f64) {
        // Map PMOS onto the NMOS equations.
        let sign = match self.polarity {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        };
        let mut vgs = sign * vgs_ext;
        let mut vds = sign * vds_ext;
        let vt = sign * self.p.vt0; // vt0 is negative for PMOS
                                    // Swap drain/source for negative vds (symmetric device).
        let swapped = vds < 0.0;
        if swapped {
            vgs -= vds; // vgd becomes the controlling voltage
            vds = -vds;
        }
        let beta = self.p.beta();
        let vov = vgs - vt;
        let (mut id, mut gm, mut gds);
        if vov <= 0.0 {
            id = 0.0;
            gm = 0.0;
            gds = 0.0;
        } else if vds < vov {
            // Triode region.
            let clm = 1.0 + self.p.lambda * vds;
            id = beta * (vov * vds - 0.5 * vds * vds) * clm;
            gm = beta * vds * clm;
            gds = beta * (vov - vds) * clm + beta * (vov * vds - 0.5 * vds * vds) * self.p.lambda;
        } else {
            // Saturation.
            let clm = 1.0 + self.p.lambda * vds;
            id = 0.5 * beta * vov * vov * clm;
            gm = beta * vov * clm;
            gds = 0.5 * beta * vov * vov * self.p.lambda;
        }
        if swapped {
            // Un-swap: current reverses, gm now acts on the original vgd.
            // After the swap vgs' = vgs - vds, vds' = -vds, id' = -id.
            // d(id)/d(vgs) = gm ; d(id)/d(vds) = gds.
            // Chain rule back to the original variables:
            //   id = -id'(vgs - vds, -vds)
            //   d id/d vgs = -gm'
            //   d id/d vds = gm' + gds'
            let (gmp, gdsp) = (gm, gds);
            id = -id;
            gm = -gmp;
            gds = gmp + gdsp;
        }
        // Map back to external polarity: i_ext(v) = sign * i(sign * v), so
        // derivatives keep their sign.
        (sign * id, gm, gds)
    }
}

impl Device for Mosfet {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        // Mirror of `stamp`: same position set, values ignored.
        let idx = crate::mna::idx;
        if let Some(di) = idx(self.d) {
            if let Some(gi) = idx(self.g) {
                pb.add(di, gi);
            }
            if let Some(si) = idx(self.s) {
                pb.add(di, si);
            }
            pb.add(di, di);
        }
        if let Some(si) = idx(self.s) {
            if let Some(gi) = idx(self.g) {
                pb.add(si, gi);
            }
            pb.add(si, si);
            if let Some(di) = idx(self.d) {
                pb.add(si, di);
            }
        }
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let vgs = ctx.v(self.g) - ctx.v(self.s);
        let vds = ctx.v(self.d) - ctx.v(self.s);
        let (id, gm, gds) = self.dc_current(vgs, vds);

        // Linearized drain current (d -> s):
        //   i ≈ id + gm (vgs - vgs0) + gds (vds - vds0)
        let idx = |n: Node| ctx.node_index(n);
        // Matrix part.
        if let Some(di) = idx(self.d) {
            if let Some(gi) = idx(self.g) {
                ws.add(di, gi, gm);
            }
            if let Some(si) = idx(self.s) {
                ws.add(di, si, -(gm + gds));
            }
            ws.add(di, di, gds);
        }
        if let Some(si) = idx(self.s) {
            if let Some(gi) = idx(self.g) {
                ws.add(si, gi, -gm);
            }
            ws.add(si, si, gm + gds);
            if let Some(di) = idx(self.d) {
                ws.add(si, di, -gds);
            }
        }
        // Constant part leaving the drain.
        let c = id - gm * vgs - gds * vds;
        stamp_current_leaving(ws, self.d, self.s, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    fn nmos() -> Mosfet {
        Mosfet::new(
            "mn",
            Node::from_raw(1),
            Node::from_raw(2),
            GROUND,
            MosPolarity::Nmos,
            MosfetParams {
                vt0: 0.5,
                kp: 100e-6,
                w: 10e-6,
                l: 1e-6,
                lambda: 0.02,
            },
        )
    }

    fn pmos() -> Mosfet {
        Mosfet::new(
            "mp",
            Node::from_raw(1),
            Node::from_raw(2),
            GROUND,
            MosPolarity::Pmos,
            MosfetParams {
                vt0: -0.5,
                kp: 40e-6,
                w: 20e-6,
                l: 1e-6,
                lambda: 0.02,
            },
        )
    }

    #[test]
    fn cutoff_region() {
        let (id, gm, gds) = nmos().dc_current(0.3, 1.0);
        assert_eq!((id, gm, gds), (0.0, 0.0, 0.0));
    }

    #[test]
    fn saturation_current_value() {
        let m = nmos();
        let beta = 100e-6 * 10.0;
        let (id, gm, _) = m.dc_current(1.5, 2.0);
        let expect = 0.5 * beta * 1.0 * (1.0 + 0.02 * 2.0);
        assert!((id - expect).abs() < 1e-9, "{id} vs {expect}");
        assert!(gm > 0.0);
    }

    #[test]
    fn triode_region_value() {
        let m = nmos();
        let beta = 1e-3;
        let (id, _, gds) = m.dc_current(1.5, 0.4);
        let clm = 1.0 + 0.02 * 0.4;
        let expect = beta * (1.0 * 0.4 - 0.08) * clm;
        assert!((id - expect).abs() < 1e-9);
        assert!(gds > 0.0);
    }

    #[test]
    fn symmetric_in_vds() {
        // Swapping drain and source with mirrored voltages flips the current.
        let m = nmos();
        let (id_fwd, _, _) = m.dc_current(1.5, 0.4);
        // Same physical bias seen from the other side: vgs' = 1.1, vds' = -0.4
        let (id_rev, _, _) = m.dc_current(1.1, -0.4);
        assert!((id_fwd + id_rev).abs() < 1e-12);
    }

    #[test]
    fn derivative_consistency_fd() {
        // Finite-difference check of gm and gds in both regions and under swap.
        let m = nmos();
        let h = 1e-7;
        for (vgs, vds) in [(1.2, 2.0), (1.5, 0.3), (1.0, -0.5), (2.0, -0.1)] {
            let (i0, gm, gds) = m.dc_current(vgs, vds);
            let (ip, _, _) = m.dc_current(vgs + h, vds);
            let (iq, _, _) = m.dc_current(vgs, vds + h);
            let gm_fd = (ip - i0) / h;
            let gds_fd = (iq - i0) / h;
            assert!(
                (gm - gm_fd).abs() < 1e-4 * (1.0 + gm.abs()),
                "gm {gm} vs fd {gm_fd} at ({vgs},{vds})"
            );
            assert!(
                (gds - gds_fd).abs() < 1e-4 * (1.0 + gds.abs()),
                "gds {gds} vs fd {gds_fd} at ({vgs},{vds})"
            );
        }
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = pmos();
        // PMOS with vgs = -1.5, vds = -2.0 conducts (current flows s -> d).
        let (id, _, _) = p.dc_current(-1.5, -2.0);
        assert!(id < 0.0, "PMOS drain current should be negative, got {id}");
        // Cutoff when |vgs| < |vt|.
        let (id, _, _) = p.dc_current(-0.3, -2.0);
        assert_eq!(id, 0.0);
    }

    #[test]
    fn pmos_derivative_consistency() {
        let m = pmos();
        let h = 1e-7;
        for (vgs, vds) in [(-1.2, -2.0), (-1.5, -0.3), (-1.0, 0.5)] {
            let (i0, gm, gds) = m.dc_current(vgs, vds);
            let (ip, _, _) = m.dc_current(vgs + h, vds);
            let (iq, _, _) = m.dc_current(vgs, vds + h);
            assert!(((ip - i0) / h - gm).abs() < 1e-4 * (1.0 + gm.abs()));
            assert!(((iq - i0) / h - gds).abs() < 1e-4 * (1.0 + gds.abs()));
        }
    }

    #[test]
    fn beta_accessor() {
        let p = MosfetParams {
            vt0: 0.5,
            kp: 2e-4,
            w: 5e-6,
            l: 1e-6,
            lambda: 0.0,
        };
        assert!((p.beta() - 1e-3).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "non-physical")]
    fn rejects_bad_params() {
        Mosfet::new(
            "bad",
            GROUND,
            GROUND,
            GROUND,
            MosPolarity::Nmos,
            MosfetParams {
                vt0: 0.5,
                kp: 0.0,
                w: 1.0,
                l: 1.0,
                lambda: 0.0,
            },
        );
    }
}
