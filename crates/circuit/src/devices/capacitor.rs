//! Linear capacitor with a trapezoidal companion model.

use crate::mna::{register_conductance, stamp_conductance, stamp_current_leaving, EvalCtx, Mode};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;

/// A linear two-terminal capacitor.
///
/// During transient analysis the capacitor is replaced by its trapezoidal
/// companion model: a conductance `G = 2C/dt` in parallel with a history
/// current source. At DC the capacitor is an open circuit (only an optional
/// initial condition influences the first step when the DC solve is
/// skipped).
#[derive(Debug, Clone)]
pub struct Capacitor {
    label: String,
    a: Node,
    b: Node,
    c: f64,
    /// Optional initial voltage for `skip_dc` starts.
    ic: Option<f64>,
    /// Voltage across the device at the last accepted step.
    v_prev: f64,
    /// Device current at the last accepted step (a → b).
    i_prev: f64,
}

impl Capacitor {
    /// Creates a capacitor of `farads` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive and finite.
    pub fn new(label: impl Into<String>, a: Node, b: Node, farads: f64) -> Self {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive and finite, got {farads}"
        );
        Capacitor {
            label: label.into(),
            a,
            b,
            c: farads,
            ic: None,
            v_prev: 0.0,
            i_prev: 0.0,
        }
    }

    /// Sets an initial voltage, used when the transient starts without a DC
    /// operating point (`TranParams::with_skip_dc`).
    pub fn with_ic(mut self, volts: f64) -> Self {
        self.ic = Some(volts);
        self
    }

    /// Capacitance in farads.
    pub fn capacitance(&self) -> f64 {
        self.c
    }

    fn v_ab(&self, ctx: &EvalCtx<'_>) -> f64 {
        ctx.v(self.a) - ctx.v(self.b)
    }
}

impl Device for Capacitor {
    fn label(&self) -> &str {
        &self.label
    }

    fn register(&self, pb: &mut PatternBuilder) {
        // Transient companion conductance; nothing extra at DC.
        register_conductance(pb, self.a, self.b);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        match ctx.mode {
            Mode::Dc => {
                // Open circuit at DC: nothing to stamp.
            }
            Mode::Tran { dt, .. } => {
                let geq = 2.0 * self.c / dt;
                // Trapezoidal: i = geq * v - (geq * v_prev + i_prev)
                stamp_conductance(ws, self.a, self.b, geq);
                let hist = geq * self.v_prev + self.i_prev;
                // `-hist` is a constant current leaving node a.
                stamp_current_leaving(ws, self.a, self.b, -hist);
            }
        }
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        self.v_prev = match self.ic {
            Some(v) => v,
            None => self.v_ab(ctx),
        };
        self.i_prev = 0.0;
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if let Mode::Tran { dt, .. } = ctx.mode {
            let v = self.v_ab(ctx);
            let geq = 2.0 * self.c / dt;
            let i = geq * (v - self.v_prev) - self.i_prev;
            self.v_prev = v;
            self.i_prev = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn dc_stamp_is_empty() {
        let c = Capacitor::new("c", Node::from_raw(1), GROUND, 1e-9);
        assert_eq!(c.capacitance(), 1e-9);
        let mut ws = StampWorkspace::dense(1);
        let x = [0.0];
        let ctx = EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Dc,
        };
        c.stamp(&ctx, &mut ws);
        assert_eq!(ws.value_at(0, 0), 0.0);
        assert_eq!(ws.rhs()[0], 0.0);
    }

    #[test]
    fn tran_stamp_has_companion() {
        let mut c = Capacitor::new("c", Node::from_raw(1), GROUND, 1e-9).with_ic(2.0);
        let x = [2.0];
        let dc_ctx = EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Dc,
        };
        c.init_state(&dc_ctx);
        let mut ws = StampWorkspace::dense(1);
        let ctx = EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Tran { t: 1e-9, dt: 1e-9 },
        };
        c.stamp(&ctx, &mut ws);
        let geq = 2.0 * 1e-9 / 1e-9;
        assert!((ws.value_at(0, 0) - geq).abs() < 1e-12);
        // History current: geq * v_prev with i_prev = 0.
        assert!((ws.rhs()[0] - geq * 2.0).abs() < 1e-12);
    }

    #[test]
    fn accept_step_tracks_current() {
        let mut c = Capacitor::new("c", Node::from_raw(1), GROUND, 1e-9);
        let x0 = [0.0];
        c.init_state(&EvalCtx {
            x: &x0,
            n_nodes: 2,
            mode: Mode::Dc,
        });
        // Voltage jumps to 1 V in one 1 ns step with C/dt = 1 S:
        // trapezoidal current i = (2C/dt) dv - i_prev = 2 A.
        let x1 = [1.0];
        c.accept_step(&EvalCtx {
            x: &x1,
            n_nodes: 2,
            mode: Mode::Tran { t: 1e-9, dt: 1e-9 },
        });
        assert!((c.i_prev - 2.0).abs() < 1e-12);
        assert_eq!(c.v_prev, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative() {
        Capacitor::new("bad", GROUND, GROUND, -1.0);
    }
}
