//! Linear resistor.

use crate::mna::{register_conductance, stamp_conductance, EvalCtx};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;

/// A linear two-terminal resistor.
///
/// # Example
///
/// ```
/// use circuit::{Circuit, GROUND};
/// use circuit::devices::Resistor;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.add(Resistor::new("r_load", a, GROUND, 50.0));
/// ```
#[derive(Debug, Clone)]
pub struct Resistor {
    label: String,
    a: Node,
    b: Node,
    conductance: f64,
}

impl Resistor {
    /// Creates a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive and finite — a zero or negative
    /// resistance is a netlist construction bug, not a runtime condition.
    pub fn new(label: impl Into<String>, a: Node, b: Node, ohms: f64) -> Self {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive and finite, got {ohms}"
        );
        Resistor {
            label: label.into(),
            a,
            b,
            conductance: 1.0 / ohms,
        }
    }

    /// Resistance in ohms.
    pub fn resistance(&self) -> f64 {
        1.0 / self.conductance
    }
}

impl Device for Resistor {
    fn label(&self) -> &str {
        &self.label
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.a, self.b);
    }

    fn stamp(&self, _ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        stamp_conductance(ws, self.a, self.b, self.conductance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mna::Mode;
    use crate::netlist::GROUND;

    #[test]
    fn stamps_conductance() {
        let r = Resistor::new("r", Node::from_raw(1), GROUND, 100.0);
        assert_eq!(r.label(), "r");
        assert_eq!(r.resistance(), 100.0);
        let mut ws = StampWorkspace::dense(1);
        let x = [0.0];
        let ctx = EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Dc,
        };
        r.stamp(&ctx, &mut ws);
        assert!((ws.value_at(0, 0) - 0.01).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_resistance() {
        Resistor::new("bad", GROUND, GROUND, 0.0);
    }
}
