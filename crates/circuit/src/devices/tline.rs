//! Ideal lossless transmission line (Branin's method of characteristics).

use crate::mna::{
    register_branch_kcl, register_branch_voltage, stamp_branch_kcl, stamp_branch_voltage, EvalCtx,
    Mode,
};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;

/// An ideal two-port lossless transmission line.
///
/// Implemented with the method of characteristics: each port sees its
/// characteristic impedance in series with a delayed voltage source carrying
/// the wave launched from the other port one delay earlier:
///
/// ```text
/// v1(t) - Z0 i1(t) = v2(t - Td) + Z0 i2(t - Td)
/// v2(t) - Z0 i2(t) = v1(t - Td) + Z0 i1(t - Td)
/// ```
///
/// At DC the line degenerates to an ideal connection (`v1 = v2`,
/// `i1 = -i2`). The history is stored as the wave sums `w = v + Z0 i` and
/// interpolated linearly, so the delay need not be a multiple of the step.
#[derive(Debug, Clone)]
pub struct IdealLine {
    label: String,
    a1: Node,
    b1: Node,
    a2: Node,
    b2: Node,
    z0: f64,
    td: f64,
    branch: usize,
    /// History of (time, w1, w2).
    hist: Vec<(f64, f64, f64)>,
}

impl IdealLine {
    /// Creates a line between port 1 `(a1, b1)` and port 2 `(a2, b2)`.
    ///
    /// # Panics
    ///
    /// Panics if `z0` or `td` is not positive and finite.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        a1: Node,
        b1: Node,
        a2: Node,
        b2: Node,
        z0: f64,
        td: f64,
    ) -> Self {
        assert!(
            z0 > 0.0 && z0.is_finite() && td > 0.0 && td.is_finite(),
            "line impedance and delay must be positive and finite"
        );
        IdealLine {
            label: label.into(),
            a1,
            b1,
            a2,
            b2,
            z0,
            td,
            branch: usize::MAX,
            hist: Vec::new(),
        }
    }

    /// Characteristic impedance (ohms).
    pub fn z0(&self) -> f64 {
        self.z0
    }

    /// One-way delay (seconds).
    pub fn td(&self) -> f64 {
        self.td
    }

    /// Looks up `(w1, w2)` at a (possibly negative) past time.
    fn waves_at(&self, t: f64) -> (f64, f64) {
        if self.hist.is_empty() {
            return (0.0, 0.0);
        }
        let first = self.hist[0];
        if t <= first.0 {
            return (first.1, first.2);
        }
        let last = *self.hist.last().expect("non-empty history");
        if t >= last.0 {
            return (last.1, last.2);
        }
        // Binary search on the time axis.
        let idx = self
            .hist
            .partition_point(|h| h.0 <= t)
            .clamp(1, self.hist.len() - 1);
        let (t0, w10, w20) = self.hist[idx - 1];
        let (t1, w11, w21) = self.hist[idx];
        let f = (t - t0) / (t1 - t0);
        (w10 + f * (w11 - w10), w20 + f * (w21 - w20))
    }

    fn port_values(&self, ctx: &EvalCtx<'_>) -> (f64, f64, f64, f64) {
        let v1 = ctx.v(self.a1) - ctx.v(self.b1);
        let v2 = ctx.v(self.a2) - ctx.v(self.b2);
        let i1 = ctx.branch(self.branch);
        let i2 = ctx.branch(self.branch + 1);
        (v1, i1, v2, i2)
    }
}

impl Device for IdealLine {
    fn label(&self) -> &str {
        &self.label
    }

    fn num_branches(&self) -> usize {
        2
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn register(&self, pb: &mut PatternBuilder) {
        let br1 = self.branch;
        let br2 = self.branch + 1;
        register_branch_kcl(pb, self.a1, self.b1, br1);
        register_branch_kcl(pb, self.a2, self.b2, br2);
        // Union of the DC (transparent connection) and transient (method of
        // characteristics) stamps.
        register_branch_voltage(pb, br1, self.a1);
        register_branch_voltage(pb, br1, self.b1);
        register_branch_voltage(pb, br1, self.a2);
        register_branch_voltage(pb, br1, self.b2);
        register_branch_voltage(pb, br2, self.a2);
        register_branch_voltage(pb, br2, self.b2);
        pb.add(br1, br1);
        pb.add(br2, br1);
        pb.add(br2, br2);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let br1 = self.branch;
        let br2 = self.branch + 1;
        stamp_branch_kcl(ws, self.a1, self.b1, br1);
        stamp_branch_kcl(ws, self.a2, self.b2, br2);
        match ctx.mode {
            Mode::Dc => {
                // v1 - v2 = 0
                stamp_branch_voltage(ws, br1, self.a1, 1.0);
                stamp_branch_voltage(ws, br1, self.b1, -1.0);
                stamp_branch_voltage(ws, br1, self.a2, -1.0);
                stamp_branch_voltage(ws, br1, self.b2, 1.0);
                // i1 + i2 = 0
                ws.add(br2, br1, 1.0);
                ws.add(br2, br2, 1.0);
            }
            Mode::Tran { t, .. } => {
                let (w1_del, w2_del) = self.waves_at(t - self.td);
                // v1 - Z0 i1 = w2(t - Td)
                stamp_branch_voltage(ws, br1, self.a1, 1.0);
                stamp_branch_voltage(ws, br1, self.b1, -1.0);
                ws.add(br1, br1, -self.z0);
                ws.rhs_add(br1, w2_del);
                // v2 - Z0 i2 = w1(t - Td)
                stamp_branch_voltage(ws, br2, self.a2, 1.0);
                stamp_branch_voltage(ws, br2, self.b2, -1.0);
                ws.add(br2, br2, -self.z0);
                ws.rhs_add(br2, w1_del);
            }
        }
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let (v1, i1, v2, i2) = self.port_values(ctx);
        self.hist.clear();
        self.hist.push((0.0, v1 + self.z0 * i1, v2 + self.z0 * i2));
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if let Mode::Tran { t, .. } = ctx.mode {
            let (v1, i1, v2, i2) = self.port_values(ctx);
            self.hist.push((t, v1 + self.z0 * i1, v2 + self.z0 * i2));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Resistor, SourceWaveform, VoltageSource};
    use crate::netlist::{Circuit, GROUND};
    use crate::transient::TranParams;

    /// Matched line: a step launched into a line terminated in Z0 arrives
    /// at the far end after exactly Td with amplitude V/2 (source divider).
    #[test]
    fn matched_line_pure_delay() {
        let z0 = 50.0;
        let td = 1e-9;
        let mut ckt = Circuit::new();
        let nsrc = ckt.node("src");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add(VoltageSource::new(
            "v",
            nsrc,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-12),
        ));
        ckt.add(Resistor::new("rs", nsrc, nin, z0));
        ckt.add(IdealLine::new("t1", nin, GROUND, nout, GROUND, z0, td));
        ckt.add(Resistor::new("rl", nout, GROUND, z0));
        let res = ckt.transient(TranParams::new(2.5e-11, 4e-9)).unwrap();
        let vout = res.voltage(nout);
        // Before the delay: zero.
        assert!(vout.sample_at(0.9e-9).abs() < 1e-6);
        // After the delay: V/2, no reflections ever.
        assert!((vout.sample_at(1.5e-9) - 0.5).abs() < 1e-3);
        assert!((vout.sample_at(3.9e-9) - 0.5).abs() < 1e-3);
    }

    /// Open-circuited line doubles the incident wave at the far end and the
    /// reflection returns after 2 Td.
    #[test]
    fn open_line_doubles() {
        let z0 = 50.0;
        let td = 1e-9;
        let mut ckt = Circuit::new();
        let nsrc = ckt.node("src");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add(VoltageSource::new(
            "v",
            nsrc,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-12),
        ));
        ckt.add(Resistor::new("rs", nsrc, nin, z0));
        ckt.add(IdealLine::new("t1", nin, GROUND, nout, GROUND, z0, td));
        ckt.add(Resistor::new("rl", nout, GROUND, 1e9)); // effectively open
        let res = ckt.transient(TranParams::new(2.5e-11, 5e-9)).unwrap();
        let vout = res.voltage(nout);
        let vin = res.voltage(nin);
        // Far end jumps to full V at t = Td (0.5 incident + 0.5 reflected).
        assert!((vout.sample_at(1.5e-9) - 1.0).abs() < 1e-3);
        // Near end sits at 0.5 until the reflection arrives at 2 Td, then 1.0.
        assert!((vin.sample_at(1.5e-9) - 0.5).abs() < 1e-3);
        assert!((vin.sample_at(2.5e-9) - 1.0).abs() < 1e-3);
    }

    /// Shorted far end reflects with -1: the near end returns to 0 at 2 Td.
    #[test]
    fn shorted_line_cancels() {
        let z0 = 75.0;
        let td = 0.5e-9;
        let mut ckt = Circuit::new();
        let nsrc = ckt.node("src");
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        ckt.add(VoltageSource::new(
            "v",
            nsrc,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-12),
        ));
        ckt.add(Resistor::new("rs", nsrc, nin, z0));
        ckt.add(IdealLine::new("t1", nin, GROUND, nout, GROUND, z0, td));
        ckt.add(Resistor::new("rl", nout, GROUND, 1e-3)); // short
        let res = ckt.transient(TranParams::new(1.25e-11, 3e-9)).unwrap();
        let vin = res.voltage(nin);
        assert!((vin.sample_at(0.8e-9) - 0.5).abs() < 1e-3);
        assert!(vin.sample_at(1.5e-9).abs() < 2e-3);
    }

    /// DC operating point treats the line as a transparent connection.
    #[test]
    fn dc_is_transparent() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(2.0)));
        ckt.add(IdealLine::new("t1", a, GROUND, b, GROUND, 50.0, 1e-9));
        ckt.add(Resistor::new("rl", b, GROUND, 100.0));
        let x = ckt.dc_operating_point().unwrap();
        assert!((x[1] - 2.0).abs() < 1e-6, "far end must equal source at DC");
    }

    #[test]
    fn accessors_and_validation() {
        let l = IdealLine::new("t", GROUND, GROUND, GROUND, GROUND, 50.0, 1e-9);
        assert_eq!(l.z0(), 50.0);
        assert_eq!(l.td(), 1e-9);
        assert_eq!(l.num_branches(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_delay() {
        IdealLine::new("bad", GROUND, GROUND, GROUND, GROUND, 50.0, 0.0);
    }
}
