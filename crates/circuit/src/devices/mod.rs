//! Built-in circuit devices.
//!
//! All devices implement the [`crate::Device`] trait. Terminal order follows
//! the SPICE convention: the first node is the positive reference for the
//! device voltage, and branch currents flow from the first node to the
//! second *through* the device.

mod capacitor;
mod coupled_inductors;
mod diode;
mod inductor;
mod mosfet;
mod resistor;
mod sources;
mod tline;

pub use capacitor::Capacitor;
pub use coupled_inductors::CoupledInductors;
pub use diode::{Diode, DiodeParams};
pub use inductor::Inductor;
pub use mosfet::{MosPolarity, Mosfet, MosfetParams};
pub use resistor::Resistor;
pub use sources::{CurrentSource, SourceWaveform, VoltageSource};
pub use tline::IdealLine;
