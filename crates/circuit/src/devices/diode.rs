//! Junction diode with exponential characteristic and Newton limiting.

use crate::mna::{register_conductance, stamp_linearized_current, EvalCtx};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;

/// Diode model parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiodeParams {
    /// Saturation current (A).
    pub is: f64,
    /// Emission coefficient (ideality factor).
    pub n: f64,
    /// Thermal voltage kT/q (V).
    pub vt: f64,
    /// Series resistance folded into the exponential via current limiting is
    /// not modeled; use an explicit [`super::Resistor`] when needed.
    pub gmin: f64,
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams {
            is: 1e-14,
            n: 1.0,
            vt: 0.02585,
            gmin: 1e-12,
        }
    }
}

impl DiodeParams {
    /// Parameters typical of on-chip ESD protection junctions: larger
    /// saturation current, slightly soft knee.
    pub fn esd_clamp() -> Self {
        DiodeParams {
            is: 1e-12,
            n: 1.1,
            ..Default::default()
        }
    }
}

/// A junction diode conducting from anode `a` to cathode `b`.
///
/// The exponential is linearly extended above the argument `EXP_CAP` to keep
/// the Newton iteration finite; combined with the solver's voltage damping
/// this provides robust convergence without per-device junction limiting
/// state.
#[derive(Debug, Clone)]
pub struct Diode {
    label: String,
    a: Node,
    b: Node,
    p: DiodeParams,
}

/// Argument cap for the exponential; beyond this the I–V curve continues
/// with the tangent at the cap (keeps Jacobians finite).
const EXP_CAP: f64 = 45.0;

impl Diode {
    /// Creates a diode with anode `a`, cathode `b`.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-physical (`is <= 0`, `n <= 0`, `vt <= 0`).
    pub fn new(label: impl Into<String>, a: Node, b: Node, p: DiodeParams) -> Self {
        assert!(
            p.is > 0.0 && p.n > 0.0 && p.vt > 0.0,
            "non-physical diode parameters"
        );
        Diode {
            label: label.into(),
            a,
            b,
            p,
        }
    }

    /// Static I–V characteristic: current (A) and conductance (S) at `v`.
    pub fn iv(&self, v: f64) -> (f64, f64) {
        let nvt = self.p.n * self.p.vt;
        let arg = v / nvt;
        if arg <= EXP_CAP {
            let e = arg.exp();
            let i = self.p.is * (e - 1.0) + self.p.gmin * v;
            let g = self.p.is * e / nvt + self.p.gmin;
            (i, g)
        } else {
            // Linear extension of the exponential at the cap.
            let e_cap = EXP_CAP.exp();
            let g_cap = self.p.is * e_cap / nvt;
            let i_cap = self.p.is * (e_cap - 1.0);
            let i = i_cap + g_cap * (v - EXP_CAP * nvt) + self.p.gmin * v;
            (i, g_cap + self.p.gmin)
        }
    }
}

impl Device for Diode {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.a, self.b);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let v = ctx.v(self.a) - ctx.v(self.b);
        let (i, g) = self.iv(v);
        stamp_linearized_current(ws, self.a, self.b, i, g, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn iv_monotone_and_continuous_at_cap() {
        let d = Diode::new("d", Node::from_raw(1), GROUND, DiodeParams::default());
        let nvt = 0.02585;
        let mut last = f64::NEG_INFINITY;
        for k in 0..200 {
            let v = -1.0 + k as f64 * 0.02;
            let (i, g) = d.iv(v);
            assert!(i >= last - 1e-18, "I–V must be monotone");
            assert!(g > 0.0, "conductance must be positive");
            last = i;
        }
        // Continuity across the exponential cap.
        let v_cap = EXP_CAP * nvt;
        let (i_lo, _) = d.iv(v_cap - 1e-9);
        let (i_hi, _) = d.iv(v_cap + 1e-9);
        assert!((i_hi - i_lo).abs() / i_lo.abs() < 1e-6);
    }

    #[test]
    fn reverse_leakage_small() {
        let d = Diode::new("d", Node::from_raw(1), GROUND, DiodeParams::default());
        let (i, _) = d.iv(-5.0);
        assert!(i < 0.0 && i.abs() < 1e-10);
    }

    #[test]
    fn esd_params_larger_is() {
        assert!(DiodeParams::esd_clamp().is > DiodeParams::default().is);
    }

    #[test]
    #[should_panic(expected = "non-physical")]
    fn rejects_bad_params() {
        Diode::new(
            "bad",
            GROUND,
            GROUND,
            DiodeParams {
                is: -1.0,
                ..Default::default()
            },
        );
    }
}
