//! Linear inductor with a trapezoidal companion model (branch formulation).

use crate::mna::{
    register_branch_kcl, register_branch_voltage, stamp_branch_kcl, stamp_branch_voltage, EvalCtx,
    Mode,
};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;

/// A linear two-terminal inductor.
///
/// The inductor contributes one branch-current unknown. At DC it behaves as
/// a short circuit; in transient it uses the trapezoidal companion
/// `v = Req (i - i_prev) - v_prev` with `Req = 2L/dt`.
#[derive(Debug, Clone)]
pub struct Inductor {
    label: String,
    a: Node,
    b: Node,
    l: f64,
    branch: usize,
    i_prev: f64,
    v_prev: f64,
}

impl Inductor {
    /// Creates an inductor of `henries` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not positive and finite.
    pub fn new(label: impl Into<String>, a: Node, b: Node, henries: f64) -> Self {
        assert!(
            henries > 0.0 && henries.is_finite(),
            "inductance must be positive and finite, got {henries}"
        );
        Inductor {
            label: label.into(),
            a,
            b,
            l: henries,
            branch: usize::MAX,
            i_prev: 0.0,
            v_prev: 0.0,
        }
    }

    /// Inductance in henries.
    pub fn inductance(&self) -> f64 {
        self.l
    }
}

impl Device for Inductor {
    fn label(&self) -> &str {
        &self.label
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn register(&self, pb: &mut PatternBuilder) {
        let br = self.branch;
        register_branch_kcl(pb, self.a, self.b, br);
        register_branch_voltage(pb, br, self.a);
        register_branch_voltage(pb, br, self.b);
        pb.add(br, br); // transient companion resistance
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let br = self.branch;
        stamp_branch_kcl(ws, self.a, self.b, br);
        stamp_branch_voltage(ws, br, self.a, 1.0);
        stamp_branch_voltage(ws, br, self.b, -1.0);
        match ctx.mode {
            Mode::Dc => {
                // Short circuit: v(a) - v(b) = 0; nothing more to stamp.
            }
            Mode::Tran { dt, .. } => {
                let req = 2.0 * self.l / dt;
                // v - Req i = -(Req i_prev + v_prev)
                ws.add(br, br, -req);
                ws.rhs_add(br, -(req * self.i_prev + self.v_prev));
            }
        }
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        self.i_prev = ctx.branch(self.branch);
        self.v_prev = 0.0;
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if let Mode::Tran { dt, .. } = ctx.mode {
            let i = ctx.branch(self.branch);
            let req = 2.0 * self.l / dt;
            let v = req * (i - self.i_prev) - self.v_prev;
            self.i_prev = i;
            self.v_prev = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    #[test]
    fn dc_stamp_is_short() {
        let mut l = Inductor::new("l", Node::from_raw(1), GROUND, 1e-6);
        assert_eq!(l.inductance(), 1e-6);
        assert_eq!(l.num_branches(), 1);
        l.set_branch_base(1);
        let mut ws = StampWorkspace::dense(2);
        let x = [0.0, 0.0];
        let ctx = EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Dc,
        };
        l.stamp(&ctx, &mut ws);
        // Branch row: v(a) = 0 at DC (short).
        assert_eq!(ws.value_at(1, 0), 1.0);
        assert_eq!(ws.value_at(1, 1), 0.0);
        // KCL column coupling.
        assert_eq!(ws.value_at(0, 1), 1.0);
    }

    #[test]
    fn tran_stamp_has_req() {
        let mut l = Inductor::new("l", Node::from_raw(1), GROUND, 1e-6);
        l.set_branch_base(1);
        let x = [0.0, 0.0];
        l.init_state(&EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Dc,
        });
        let mut ws = StampWorkspace::dense(2);
        let ctx = EvalCtx {
            x: &x,
            n_nodes: 2,
            mode: Mode::Tran { t: 1e-9, dt: 1e-9 },
        };
        l.stamp(&ctx, &mut ws);
        let req = 2.0 * 1e-6 / 1e-9;
        assert!((ws.value_at(1, 1) + req).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero() {
        Inductor::new("bad", GROUND, GROUND, 0.0);
    }
}
