//! Independent voltage and current sources and their drive waveforms.

use crate::mna::{
    register_branch_kcl, register_branch_voltage, stamp_branch_kcl, stamp_branch_voltage,
    stamp_current_leaving, EvalCtx,
};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;
use numkit::interp::Pwl;

/// Time-dependent source waveform.
///
/// The bit-pattern variant is the workhorse for driver experiments: it turns
/// a logic string such as `"010"` into a trapezoidal rail-to-rail waveform
/// with configurable bit time and edge times.
#[derive(Debug, Clone)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Single step from `from` to `to`, linear edge of `rise` seconds
    /// starting at `delay`.
    Step {
        /// Initial value.
        from: f64,
        /// Final value.
        to: f64,
        /// Edge start time (seconds).
        delay: f64,
        /// Edge duration (seconds).
        rise: f64,
    },
    /// Single trapezoidal pulse.
    Pulse {
        /// Baseline value.
        low: f64,
        /// Pulse top value.
        high: f64,
        /// Time of the leading edge start (seconds).
        delay: f64,
        /// Rise time (seconds).
        rise: f64,
        /// Top width (seconds), excluding edges.
        width: f64,
        /// Fall time (seconds).
        fall: f64,
    },
    /// Arbitrary piecewise-linear waveform (clamped outside its range).
    Pwl(Pwl),
    /// Logic bit pattern rendered as a trapezoidal waveform.
    BitPattern {
        /// Bits, earliest first.
        bits: Vec<bool>,
        /// Bit period (seconds).
        bit_time: f64,
        /// Edge (rise and fall) duration (seconds).
        edge: f64,
        /// Logic-low voltage.
        low: f64,
        /// Logic-high voltage.
        high: f64,
        /// Start delay before the first bit boundary (seconds).
        delay: f64,
    },
}

impl SourceWaveform {
    /// Constant (DC) waveform.
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// Step from `from` to `to` with edge duration `rise` starting at t = 0.
    pub fn step(from: f64, to: f64, rise: f64) -> Self {
        SourceWaveform::Step {
            from,
            to,
            delay: 0.0,
            rise,
        }
    }

    /// Parses a pattern string of `'0'`/`'1'` characters into a bit-pattern
    /// waveform.
    ///
    /// # Panics
    ///
    /// Panics if the string contains characters other than `0`/`1` — the
    /// pattern is part of the experiment definition, not runtime input.
    pub fn bit_pattern(
        pattern: &str,
        bit_time: f64,
        edge: f64,
        low: f64,
        high: f64,
        delay: f64,
    ) -> Self {
        let bits = pattern
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid bit character '{other}' in pattern"),
            })
            .collect();
        SourceWaveform::BitPattern {
            bits,
            bit_time,
            edge,
            low,
            high,
            delay,
        }
    }

    /// Evaluates the waveform at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Step {
                from,
                to,
                delay,
                rise,
            } => {
                if t <= *delay {
                    *from
                } else if t >= delay + rise {
                    *to
                } else {
                    from + (to - from) * (t - delay) / rise
                }
            }
            SourceWaveform::Pulse {
                low,
                high,
                delay,
                rise,
                width,
                fall,
            } => {
                let t = t - delay;
                if t <= 0.0 {
                    *low
                } else if t < *rise {
                    low + (high - low) * t / rise
                } else if t < rise + width {
                    *high
                } else if t < rise + width + fall {
                    high - (high - low) * (t - rise - width) / fall
                } else {
                    *low
                }
            }
            SourceWaveform::Pwl(pwl) => pwl.eval(t),
            SourceWaveform::BitPattern {
                bits,
                bit_time,
                edge,
                low,
                high,
                delay,
            } => {
                if bits.is_empty() {
                    return *low;
                }
                let level = |b: bool| if b { *high } else { *low };
                let tt = t - delay;
                if tt <= 0.0 {
                    return level(bits[0]);
                }
                let k = (tt / bit_time).floor() as usize;
                if k >= bits.len() {
                    return level(*bits.last().expect("non-empty bits"));
                }
                let cur = level(bits[k]);
                if k == 0 {
                    return cur;
                }
                let prev = level(bits[k - 1]);
                let t_in = tt - k as f64 * bit_time;
                if t_in < *edge && prev != cur {
                    prev + (cur - prev) * t_in / edge
                } else {
                    cur
                }
            }
        }
    }
}

/// An independent voltage source (one branch unknown).
#[derive(Debug, Clone)]
pub struct VoltageSource {
    label: String,
    a: Node,
    b: Node,
    wave: SourceWaveform,
    branch: usize,
}

impl VoltageSource {
    /// Creates a source with `a` as the positive terminal.
    pub fn new(label: impl Into<String>, a: Node, b: Node, wave: SourceWaveform) -> Self {
        VoltageSource {
            label: label.into(),
            a,
            b,
            wave,
            branch: usize::MAX,
        }
    }

    /// Zero-volt source used as an ammeter between `a` and `b`: the branch
    /// current (index 0) is the current flowing from `a` to `b`.
    pub fn probe(label: impl Into<String>, a: Node, b: Node) -> Self {
        Self::new(label, a, b, SourceWaveform::dc(0.0))
    }

    /// The drive waveform.
    pub fn waveform(&self) -> &SourceWaveform {
        &self.wave
    }

    /// Replaces the drive waveform in place. Together with
    /// [`crate::Circuit::device_mut`] this lets sweep harnesses update a
    /// source value between solves instead of rebuilding the circuit (the
    /// stamp pattern is unaffected, so cached solver structures stay valid).
    pub fn set_waveform(&mut self, wave: SourceWaveform) {
        self.wave = wave;
    }
}

impl Device for VoltageSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn num_branches(&self) -> usize {
        1
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn register(&self, pb: &mut PatternBuilder) {
        let br = self.branch;
        register_branch_kcl(pb, self.a, self.b, br);
        register_branch_voltage(pb, br, self.a);
        register_branch_voltage(pb, br, self.b);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let br = self.branch;
        stamp_branch_kcl(ws, self.a, self.b, br);
        stamp_branch_voltage(ws, br, self.a, 1.0);
        stamp_branch_voltage(ws, br, self.b, -1.0);
        ws.rhs_add(br, self.wave.value_at(ctx.mode.time()));
    }
}

/// An independent current source. Positive current flows from `a` to `b`
/// through the source (i.e. it is injected into node `b`).
#[derive(Debug, Clone)]
pub struct CurrentSource {
    label: String,
    a: Node,
    b: Node,
    wave: SourceWaveform,
}

impl CurrentSource {
    /// Creates a current source pushing current from `a` to `b`.
    pub fn new(label: impl Into<String>, a: Node, b: Node, wave: SourceWaveform) -> Self {
        CurrentSource {
            label: label.into(),
            a,
            b,
            wave,
        }
    }
}

impl Device for CurrentSource {
    fn label(&self) -> &str {
        &self.label
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let i = self.wave.value_at(ctx.mode.time());
        stamp_current_leaving(ws, self.a, self.b, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_and_step() {
        assert_eq!(SourceWaveform::dc(2.5).value_at(1.0), 2.5);
        let s = SourceWaveform::step(0.0, 1.0, 1e-9);
        assert_eq!(s.value_at(-1.0), 0.0);
        assert_eq!(s.value_at(0.5e-9), 0.5);
        assert_eq!(s.value_at(2e-9), 1.0);
    }

    #[test]
    fn pulse_shape() {
        let p = SourceWaveform::Pulse {
            low: 0.0,
            high: 2.0,
            delay: 1.0,
            rise: 0.5,
            width: 1.0,
            fall: 0.5,
        };
        assert_eq!(p.value_at(0.0), 0.0);
        assert_eq!(p.value_at(1.25), 1.0);
        assert_eq!(p.value_at(2.0), 2.0);
        assert_eq!(p.value_at(2.75), 1.0);
        assert_eq!(p.value_at(5.0), 0.0);
    }

    #[test]
    fn bit_pattern_edges() {
        let w = SourceWaveform::bit_pattern("010", 1.0, 0.2, 0.0, 3.0, 0.0);
        // First bit low.
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.9), 0.0);
        // Rising edge at t = 1.0..1.2.
        assert!((w.value_at(1.1) - 1.5).abs() < 1e-12);
        assert_eq!(w.value_at(1.5), 3.0);
        // Falling edge at t = 2.0..2.2.
        assert!((w.value_at(2.1) - 1.5).abs() < 1e-12);
        assert_eq!(w.value_at(2.5), 0.0);
        // Holds last bit forever.
        assert_eq!(w.value_at(99.0), 0.0);
        // Before start: first bit value.
        assert_eq!(w.value_at(-1.0), 0.0);
    }

    #[test]
    fn bit_pattern_no_edge_between_equal_bits() {
        let w = SourceWaveform::bit_pattern("11", 1.0, 0.2, 0.0, 1.0, 0.0);
        assert_eq!(w.value_at(1.05), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn bit_pattern_rejects_garbage() {
        SourceWaveform::bit_pattern("01x", 1.0, 0.1, 0.0, 1.0, 0.0);
    }

    #[test]
    fn pwl_variant() {
        let pwl = Pwl::new(vec![0.0, 1.0], vec![0.0, 5.0]).unwrap();
        let w = SourceWaveform::Pwl(pwl);
        assert_eq!(w.value_at(0.5), 2.5);
    }

    #[test]
    fn probe_is_zero_volt() {
        let p = VoltageSource::probe("ip", Node::from_raw(1), Node::from_raw(2));
        match p.waveform() {
            SourceWaveform::Dc(v) => assert_eq!(*v, 0.0),
            _ => panic!("probe should be DC"),
        }
    }
}
