//! Magnetically coupled inductor bank (full inductance matrix).

use crate::mna::{
    register_branch_kcl, register_branch_voltage, stamp_branch_kcl, stamp_branch_voltage, EvalCtx,
    Mode,
};
use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::Device;
use numkit::Matrix;

/// A bank of `k` inductors coupled through a full symmetric inductance
/// matrix `L` (henries):
///
/// ```text
/// v_j = sum_k L[j][k] * d(i_k)/dt
/// ```
///
/// This is the series element of a multiconductor transmission-line segment;
/// the off-diagonal terms carry the inductive crosstalk. Each inductor `j`
/// connects `a[j]` to `b[j]` and owns one branch-current unknown.
#[derive(Debug, Clone)]
pub struct CoupledInductors {
    label: String,
    a: Vec<Node>,
    b: Vec<Node>,
    l: Matrix,
    branch: usize,
    i_prev: Vec<f64>,
    v_prev: Vec<f64>,
}

impl CoupledInductors {
    /// Creates a coupled bank. `l` must be square, symmetric and of the same
    /// dimension as the terminal lists.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or an asymmetric/non-positive-diagonal
    /// inductance matrix — these are netlist construction bugs.
    pub fn new(label: impl Into<String>, a: Vec<Node>, b: Vec<Node>, l: Matrix) -> Self {
        let k = a.len();
        assert!(k > 0, "coupled inductor bank must have at least one branch");
        assert_eq!(b.len(), k, "terminal lists must have equal length");
        assert_eq!(l.rows(), k, "inductance matrix dimension mismatch");
        assert_eq!(l.cols(), k, "inductance matrix dimension mismatch");
        for i in 0..k {
            assert!(l.get(i, i) > 0.0, "self inductances must be positive");
            for j in 0..k {
                assert!(
                    (l.get(i, j) - l.get(j, i)).abs() <= 1e-12 * l.get(i, i).abs(),
                    "inductance matrix must be symmetric"
                );
            }
        }
        CoupledInductors {
            label: label.into(),
            a,
            b,
            l,
            branch: usize::MAX,
            i_prev: vec![0.0; k],
            v_prev: vec![0.0; k],
        }
    }

    /// Number of coupled branches.
    pub fn order(&self) -> usize {
        self.a.len()
    }
}

impl Device for CoupledInductors {
    fn label(&self) -> &str {
        &self.label
    }

    fn num_branches(&self) -> usize {
        self.a.len()
    }

    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }

    fn register(&self, pb: &mut PatternBuilder) {
        let k = self.order();
        for j in 0..k {
            let br = self.branch + j;
            register_branch_kcl(pb, self.a[j], self.b[j], br);
            register_branch_voltage(pb, br, self.a[j]);
            register_branch_voltage(pb, br, self.b[j]);
            // Dense branch-branch coupling block of the inductance matrix.
            for m in 0..k {
                pb.add(br, self.branch + m);
            }
        }
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let k = self.order();
        for j in 0..k {
            let br = self.branch + j;
            stamp_branch_kcl(ws, self.a[j], self.b[j], br);
            stamp_branch_voltage(ws, br, self.a[j], 1.0);
            stamp_branch_voltage(ws, br, self.b[j], -1.0);
        }
        match ctx.mode {
            Mode::Dc => { /* rows already read v_aj - v_bj = 0 */ }
            Mode::Tran { dt, .. } => {
                let f = 2.0 / dt;
                for j in 0..k {
                    let br = self.branch + j;
                    let mut hist = -self.v_prev[j];
                    for m in 0..k {
                        let req = f * self.l.get(j, m);
                        ws.add(br, self.branch + m, -req);
                        hist -= req * self.i_prev[m];
                    }
                    ws.rhs_add(br, hist);
                }
            }
        }
    }

    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        for j in 0..self.order() {
            self.i_prev[j] = ctx.branch(self.branch + j);
            self.v_prev[j] = 0.0;
        }
    }

    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        if let Mode::Tran { dt, .. } = ctx.mode {
            let k = self.order();
            let f = 2.0 / dt;
            let i_new: Vec<f64> = (0..k).map(|j| ctx.branch(self.branch + j)).collect();
            for j in 0..k {
                let mut v = -self.v_prev[j];
                for m in 0..k {
                    v += f * self.l.get(j, m) * (i_new[m] - self.i_prev[m]);
                }
                self.v_prev[j] = v;
            }
            self.i_prev = i_new;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Resistor, SourceWaveform, VoltageSource};
    use crate::netlist::{Circuit, GROUND};
    use crate::transient::TranParams;

    /// A single-branch bank must behave exactly like a plain inductor.
    #[test]
    fn single_branch_matches_inductor() {
        let l_val = 1e-6;
        let r = 10.0;
        let tau = l_val / r;

        let run = |use_bank: bool| {
            let mut ckt = Circuit::new();
            let nin = ckt.node("in");
            let nmid = ckt.node("mid");
            ckt.add(VoltageSource::new(
                "v",
                nin,
                GROUND,
                SourceWaveform::step(0.0, 1.0, 1e-12),
            ));
            ckt.add(Resistor::new("r", nin, nmid, r));
            let id = if use_bank {
                let l = Matrix::from_rows(&[&[l_val]]).unwrap();
                ckt.add(CoupledInductors::new("lb", vec![nmid], vec![GROUND], l))
            } else {
                ckt.add(crate::devices::Inductor::new("l", nmid, GROUND, l_val))
            };
            let res = ckt
                .transient(TranParams::new(tau / 100.0, 3.0 * tau))
                .unwrap();
            res.branch_current(&ckt, id, 0)
        };

        let bank = run(true);
        let plain = run(false);
        for (t, ib) in bank.times().iter().zip(bank.values()) {
            let ip = plain.sample_at(*t);
            assert!((ib - ip).abs() < 1e-9, "mismatch at t={t}");
        }
    }

    /// Two perfectly-coupled windings with equal L act as a 1:1 transformer:
    /// driving branch 1 induces the full voltage on open branch 2.
    #[test]
    fn mutual_coupling_induces_voltage() {
        let mut ckt = Circuit::new();
        let nin = ckt.node("in");
        let nmid = ckt.node("mid");
        let nsec = ckt.node("sec");
        ckt.add(VoltageSource::new(
            "v",
            nin,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-10),
        ));
        ckt.add(Resistor::new("r", nin, nmid, 50.0));
        // k = 0.99 coupling.
        let l = Matrix::from_rows(&[&[1e-6, 0.99e-6], &[0.99e-6, 1e-6]]).unwrap();
        ckt.add(CoupledInductors::new(
            "xfmr",
            vec![nmid, nsec],
            vec![GROUND, GROUND],
            l,
        ));
        // Light load on secondary so its node is not floating.
        ckt.add(Resistor::new("rload", nsec, GROUND, 1e6));
        let res = ckt.transient(TranParams::new(1e-10, 2e-8)).unwrap();
        let vp = res.voltage(nmid);
        let vs = res.voltage(nsec);
        // Early in the rise, the secondary voltage tracks ~k * primary.
        let t_probe = 3e-10;
        let ratio = vs.sample_at(t_probe) / vp.sample_at(t_probe);
        assert!((ratio - 0.99).abs() < 0.05, "coupling ratio {ratio}");
    }

    #[test]
    fn validation_panics() {
        let l = Matrix::from_rows(&[&[1e-6, 0.5e-6], &[0.4e-6, 1e-6]]).unwrap();
        let result = std::panic::catch_unwind(|| {
            CoupledInductors::new("bad", vec![GROUND, GROUND], vec![GROUND, GROUND], l)
        });
        assert!(result.is_err(), "asymmetric L must panic");
    }

    #[test]
    fn order_accessor() {
        let l = Matrix::identity(2).scaled(1e-6);
        let b = CoupledInductors::new("b", vec![GROUND, GROUND], vec![GROUND, GROUND], l);
        assert_eq!(b.order(), 2);
        assert_eq!(b.num_branches(), 2);
    }
}
