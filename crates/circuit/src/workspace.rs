//! Persistent solver workspace: slot-cached sparse stamping plus a reusable
//! LU structure.
//!
//! The MNA matrix of a circuit is re-stamped with fresh numeric values every
//! Newton iteration of every timestep, but its *sparsity pattern never
//! changes*: device terminals are fixed at netlist construction time. The
//! [`StampWorkspace`] exploits this:
//!
//! * at build time ([`crate::Circuit::make_workspace`]) every device
//!   registers its potential nonzero positions once via
//!   [`crate::Device::register`], producing a column-compressed pattern;
//! * each Newton iteration, devices write numeric values through
//!   [`StampWorkspace::add`], which resolves `(row, col)` to a cached value
//!   slot — no per-iteration allocation, no dense `n × n` zero-fill;
//! * [`StampWorkspace::solve`] factors the system with
//!   [`numkit::sparse::SparseLu`]: one symbolic analysis per circuit, then
//!   numeric-only refactorizations per iteration.
//!
//! Very small systems (`n <` [`DENSE_LIMIT`]) keep the dense
//! [`numkit::lu::LuFactor`] path — the sparse bookkeeping would cost more
//! than it saves.
//!
//! A device that writes to a position it never registered does not break
//! anything: the write lands in an overflow list and the pattern grows at
//! the next [`StampWorkspace::solve`], at the cost of one extra symbolic
//! analysis (visible in [`SolveStats::symbolic_analyses`]).

use numkit::sparse::{CscPattern, SparseLu};
use numkit::{lu::LuFactor, Matrix};

/// Below this unknown count the workspace uses the dense LU path.
pub const DENSE_LIMIT: usize = 4;

/// Open-addressing `(row, col) → value-slot` map over the structural
/// nonzeros of a [`CscPattern`].
///
/// Stamping resolves a matrix position to its value slot on *every* device
/// write of every Newton iteration, so the lookup must be O(1) regardless of
/// circuit size. The previous design kept a dense `n × n` slot array (O(n²)
/// memory) and degraded to per-column binary search above n = 1024; this
/// table stores only O(nnz) entries — keys packed as `row << 32 | col`,
/// linear probing, load factor ≤ 0.5 — and stays O(1) at any size.
#[derive(Debug)]
struct SlotMap {
    /// Power-of-two capacity minus one.
    mask: usize,
    /// Packed `(row << 32) | col` keys; `u64::MAX` marks an empty bucket
    /// (unreachable as a real key: rows and cols are `< n ≤ u32::MAX`).
    keys: Vec<u64>,
    /// Value-slot index parallel to `keys`.
    slots: Vec<u32>,
}

const SLOT_EMPTY: u64 = u64::MAX;

#[inline]
fn slot_key(r: usize, c: usize) -> u64 {
    ((r as u64) << 32) | c as u64
}

#[inline]
fn slot_hash(key: u64) -> usize {
    // Fibonacci multiplicative hash; the high bits carry the mix.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
}

impl SlotMap {
    fn build(pattern: &CscPattern) -> Self {
        let cap = (pattern.nnz().max(1) * 2).next_power_of_two();
        let mut map = SlotMap {
            mask: cap - 1,
            keys: vec![SLOT_EMPTY; cap],
            slots: vec![0; cap],
        };
        for c in 0..pattern.n() {
            for (r, s) in pattern.col_entries(c) {
                let key = slot_key(r, c);
                let mut i = slot_hash(key) & map.mask;
                while map.keys[i] != SLOT_EMPTY {
                    debug_assert_ne!(map.keys[i], key, "pattern entries are unique");
                    i = (i + 1) & map.mask;
                }
                map.keys[i] = key;
                map.slots[i] = s as u32;
            }
        }
        map
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> Option<usize> {
        let key = slot_key(r, c);
        let mut i = slot_hash(key) & self.mask;
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.slots[i] as usize);
            }
            if k == SLOT_EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Collects the structural nonzero positions of a circuit's MNA matrix.
/// Devices receive one in [`crate::Device::register`] and add every `(row,
/// column)` they may ever touch, across all analysis modes.
#[derive(Debug)]
pub struct PatternBuilder {
    n: usize,
    entries: Vec<(usize, usize)>,
}

impl PatternBuilder {
    /// Creates a builder for an `n`-unknown system.
    pub fn new(n: usize) -> Self {
        PatternBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Registers a potential nonzero at `(r, c)`. Duplicates are merged.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range — registering a position outside
    /// the system is a device implementation bug.
    pub fn add(&mut self, r: usize, c: usize) {
        assert!(
            r < self.n && c < self.n,
            "pattern position ({r}, {c}) out of range for {} unknowns",
            self.n
        );
        self.entries.push((r, c));
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Positions registered so far, in insertion order (duplicates
    /// preserved). Used by the structural lint rules to compare a device's
    /// declared pattern against what its `stamp` actually writes.
    pub fn entries(&self) -> &[(usize, usize)] {
        &self.entries
    }
}

/// Cumulative solver diagnostics of a workspace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Symbolic analyses performed (fill ordering + Gilbert–Peierls pivot
    /// discovery). A well-behaved circuit needs exactly one.
    pub symbolic_analyses: usize,
    /// Numeric factorizations (dense or sparse refactorizations).
    pub factorizations: usize,
    /// Structural nonzeros of the current `L + U` factors, diagonal
    /// included — the fill-in diagnostic (dense backend: `n²`).
    pub factor_nnz: usize,
    /// Cumulative numeric factorization work: multiply–adds plus divides,
    /// summed over every factorization including discarded re-pivot
    /// attempts (dense backend: an `n³/3` estimate per factorization).
    pub flops: u64,
}

struct SparseState {
    pattern: CscPattern,
    values: Vec<f64>,
    /// O(1) `(r, c) -> slot` resolution over the registered pattern.
    slot: SlotMap,
    lu: Option<SparseLu>,
    /// Writes to unregistered positions, merged at the next solve.
    overflow: Vec<(usize, usize, f64)>,
}

enum Backend {
    Dense { mat: Matrix },
    Sparse(Box<SparseState>),
}

/// The per-analysis stamping and solving workspace. See the [module
/// docs](self) for the lifecycle.
pub struct StampWorkspace {
    n: usize,
    rhs: Vec<f64>,
    backend: Backend,
    stats: SolveStats,
    /// Flops accumulated by `SparseLu` objects that have since been replaced
    /// (pattern growth or pivot-decay re-analysis); added to the live
    /// object's counter when reporting [`SolveStats::flops`].
    flops_base: u64,
    x_out: Vec<f64>,
    scratch: Vec<f64>,
}

impl std::fmt::Debug for StampWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StampWorkspace")
            .field("n", &self.n)
            .field("dense", &matches!(self.backend, Backend::Dense { .. }))
            .field("stats", &self.stats)
            .finish()
    }
}

impl StampWorkspace {
    /// Builds a workspace from a registered pattern. Falls back to the
    /// dense path for `n <` [`DENSE_LIMIT`].
    pub fn from_pattern(pb: PatternBuilder) -> Self {
        let n = pb.n;
        let backend = if n < DENSE_LIMIT {
            Backend::Dense {
                mat: Matrix::zeros(n, n),
            }
        } else {
            let pattern = CscPattern::from_entries(n, &pb.entries)
                .expect("PatternBuilder validated every entry");
            let slot = SlotMap::build(&pattern);
            Backend::Sparse(Box::new(SparseState {
                values: vec![0.0; pattern.nnz()],
                slot,
                pattern,
                lu: None,
                overflow: Vec::new(),
            }))
        };
        StampWorkspace {
            n,
            rhs: vec![0.0; n],
            backend,
            stats: SolveStats::default(),
            flops_base: 0,
            x_out: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }

    /// A dense workspace with no registered pattern — the O(n³) reference
    /// backend. Used by unit tests that stamp a device in isolation and by
    /// golden-agreement runs that compare the sparse solver against the
    /// dense one on the same circuit (see `TranParams::with_dense_solver`).
    pub fn dense(n: usize) -> Self {
        StampWorkspace {
            n,
            rhs: vec![0.0; n],
            backend: Backend::Dense {
                mat: Matrix::zeros(n, n),
            },
            stats: SolveStats::default(),
            flops_base: 0,
            x_out: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }

    /// A recording workspace: the sparse backend with an *empty* registered
    /// pattern, so that every [`StampWorkspace::add`] lands in the overflow
    /// list. The structural lint audit uses this to observe exactly which
    /// positions a device's `stamp` writes (read back via
    /// [`StampWorkspace::overflow_entries`]) without touching the stamping
    /// hot path. Not intended for solving.
    pub fn recording(n: usize) -> Self {
        let pattern =
            CscPattern::from_entries(n, &[]).expect("empty pattern is valid at any dimension");
        let slot = SlotMap::build(&pattern);
        StampWorkspace {
            n,
            rhs: vec![0.0; n],
            backend: Backend::Sparse(Box::new(SparseState {
                values: Vec::new(),
                slot,
                pattern,
                lu: None,
                overflow: Vec::new(),
            })),
            stats: SolveStats::default(),
            flops_base: 0,
            x_out: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }

    /// Writes that landed outside the registered pattern since the last
    /// [`StampWorkspace::begin`], in write order. On a workspace built by
    /// [`StampWorkspace::recording`] this is the complete set of stamped
    /// matrix positions.
    pub fn overflow_entries(&self) -> &[(usize, usize, f64)] {
        match &self.backend {
            Backend::Dense { .. } => &[],
            Backend::Sparse(state) => &state.overflow,
        }
    }

    /// Number of unknowns.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Zeroes values and right-hand side for a fresh stamping pass.
    pub fn begin(&mut self) {
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        match &mut self.backend {
            Backend::Dense { mat } => mat.fill_zero(),
            Backend::Sparse(state) => {
                state.values.iter_mut().for_each(|v| *v = 0.0);
                state.overflow.clear();
            }
        }
    }

    /// Accumulates `v` into matrix position `(r, c)`.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.n && c < self.n,
            "stamp position ({r}, {c}) out of range for {} unknowns",
            self.n
        );
        match &mut self.backend {
            Backend::Dense { mat } => mat.add_at(r, c, v),
            Backend::Sparse(state) => match state.slot.get(r, c) {
                Some(s) => state.values[s] += v,
                None => state.overflow.push((r, c, v)),
            },
        }
    }

    /// Accumulates `v` into right-hand-side row `r`.
    #[inline]
    pub fn rhs_add(&mut self, r: usize, v: f64) {
        self.rhs[r] += v;
    }

    /// Read access to the right-hand side (diagnostics and tests).
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }

    /// Current numeric value at `(r, c)` (0 for structural zeros) —
    /// diagnostics and tests.
    pub fn value_at(&self, r: usize, c: usize) -> f64 {
        match &self.backend {
            Backend::Dense { mat } => mat.get(r, c),
            Backend::Sparse(state) => {
                let mut v = state
                    .pattern
                    .index_of(r, c)
                    .map_or(0.0, |s| state.values[s]);
                for &(orow, ocol, ov) in &state.overflow {
                    if orow == r && ocol == c {
                        v += ov;
                    }
                }
                v
            }
        }
    }

    /// Cumulative diagnostics.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Merges overflowed (unregistered) positions into the pattern,
    /// invalidating the symbolic structure.
    fn grow_pattern(&mut self) {
        let Backend::Sparse(state) = &mut self.backend else {
            return;
        };
        let SparseState {
            pattern,
            values,
            slot,
            lu,
            overflow,
        } = state.as_mut();
        let n = pattern.n();
        let mut entries: Vec<(usize, usize)> = Vec::with_capacity(pattern.nnz() + overflow.len());
        let mut vals: Vec<(usize, usize, f64)> = Vec::with_capacity(entries.capacity());
        for c in 0..n {
            for (r, s) in pattern.col_entries(c) {
                entries.push((r, c));
                vals.push((r, c, values[s]));
            }
        }
        for &(r, c, v) in overflow.iter() {
            entries.push((r, c));
            vals.push((r, c, v));
        }
        let grown = CscPattern::from_entries(n, &entries).expect("positions validated on add");
        let mut new_values = vec![0.0; grown.nnz()];
        for (r, c, v) in vals {
            let s = grown.index_of(r, c).expect("entry just inserted");
            new_values[s] += v;
        }
        *slot = SlotMap::build(&grown);
        *pattern = grown;
        *values = new_values;
        *lu = None;
        overflow.clear();
    }

    /// Factors the stamped system and solves it against the stamped
    /// right-hand side. Reuses the symbolic structure whenever possible.
    ///
    /// # Errors
    ///
    /// Propagates [`numkit::Error`] for singular systems.
    pub fn solve(&mut self) -> numkit::Result<&[f64]> {
        if let Backend::Sparse(state) = &self.backend {
            if !state.overflow.is_empty() {
                self.grow_pattern();
            }
        }
        match &mut self.backend {
            Backend::Dense { mat } => {
                let lu = LuFactor::new(mat)?;
                self.stats.factorizations += 1;
                if self.stats.symbolic_analyses == 0 {
                    self.stats.symbolic_analyses = 1;
                }
                let n = self.n as u64;
                self.stats.factor_nnz = self.n * self.n;
                self.stats.flops += n * n * n / 3;
                let x = lu.solve(&self.rhs)?;
                self.x_out.copy_from_slice(&x);
            }
            Backend::Sparse(state) => {
                let SparseState {
                    pattern,
                    values,
                    lu,
                    ..
                } = state.as_mut();
                let refreshed = match lu {
                    Some(f) => f.refactor(values).is_ok(),
                    None => false,
                };
                if !refreshed {
                    // First factorization, grown pattern, or a frozen pivot
                    // decayed: re-run the sparse Gilbert–Peierls analysis
                    // (O(flops into L·U), same as a refactorization up to
                    // the ordering + reach overhead — no dense fallback).
                    if let Some(old) = lu.take() {
                        self.flops_base += old.total_flops();
                    }
                    *lu = Some(SparseLu::factor(pattern, values)?);
                    self.stats.symbolic_analyses += 1;
                }
                self.stats.factorizations += 1;
                let f = lu.as_ref().expect("factorization just ensured");
                self.stats.factor_nnz = f.factor_nnz();
                self.stats.flops = self.flops_base + f.total_flops();
                f.solve_into(&self.rhs, &mut self.x_out, &mut self.scratch)?;
            }
        }
        Ok(&self.x_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_pattern(n: usize) -> PatternBuilder {
        let mut pb = PatternBuilder::new(n);
        for i in 0..n {
            pb.add(i, i);
        }
        pb
    }

    #[test]
    fn dense_path_for_tiny_systems() {
        let ws = StampWorkspace::from_pattern(diag_pattern(2));
        assert!(matches!(ws.backend, Backend::Dense { .. }));
        let ws = StampWorkspace::from_pattern(diag_pattern(DENSE_LIMIT));
        assert!(matches!(ws.backend, Backend::Sparse(_)));
    }

    #[test]
    fn sparse_solve_reuses_symbolic() {
        let n = 5;
        let mut pb = diag_pattern(n);
        for i in 1..n {
            pb.add(i - 1, i);
            pb.add(i, i - 1);
        }
        let mut ws = StampWorkspace::from_pattern(pb);
        for pass in 0..3 {
            ws.begin();
            let d = 4.0 + pass as f64;
            for i in 0..n {
                ws.add(i, i, d);
            }
            for i in 1..n {
                ws.add(i - 1, i, -1.0);
                ws.add(i, i - 1, -1.0);
            }
            ws.rhs_add(0, 1.0);
            let x = ws.solve().unwrap().to_vec();
            // Residual check of the tridiagonal solve.
            for i in 0..n {
                let mut r = d * x[i];
                if i > 0 {
                    r -= x[i - 1];
                }
                if i + 1 < n {
                    r -= x[i + 1];
                }
                let b = if i == 0 { 1.0 } else { 0.0 };
                assert!((r - b).abs() < 1e-12, "pass {pass} row {i}");
            }
        }
        let stats = ws.stats();
        assert_eq!(stats.symbolic_analyses, 1, "one symbolic analysis total");
        assert_eq!(stats.factorizations, 3);
        // A tridiagonal system factors with zero fill: 2(n-1) off-diagonals
        // plus the n pivots.
        assert_eq!(stats.factor_nnz, 3 * n - 2);
        assert!(stats.flops > 0, "flop counter must accumulate");
    }

    #[test]
    fn unregistered_write_grows_pattern() {
        let n = 4;
        let mut ws = StampWorkspace::from_pattern(diag_pattern(n));
        ws.begin();
        for i in 0..n {
            ws.add(i, i, 2.0);
        }
        // Position (0, 3) was never registered.
        ws.add(0, 3, 1.0);
        assert_eq!(ws.value_at(0, 3), 1.0);
        ws.rhs_add(3, 2.0);
        let x = ws.solve().unwrap().to_vec();
        // Row 0: 2 x0 + x3 = 0, row 3: 2 x3 = 2.
        assert!((x[3] - 1.0).abs() < 1e-12);
        assert!((x[0] + 0.5).abs() < 1e-12);
        assert_eq!(ws.stats().symbolic_analyses, 1);
        // Next pass stamps the same position without growing again.
        ws.begin();
        for i in 0..n {
            ws.add(i, i, 2.0);
        }
        ws.add(0, 3, 1.0);
        ws.rhs_add(0, 2.0);
        ws.solve().unwrap();
        assert_eq!(ws.stats().symbolic_analyses, 1);
        assert_eq!(ws.stats().factorizations, 2);
    }

    #[test]
    fn singular_system_reported() {
        let mut ws = StampWorkspace::from_pattern(diag_pattern(5));
        ws.begin();
        // Leave every value zero: structurally present diagonal, numerically
        // singular.
        assert!(ws.solve().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pattern_rejects_out_of_range() {
        let mut pb = PatternBuilder::new(2);
        pb.add(2, 0);
    }

    /// The hash slot map must resolve every registered position (and no
    /// unregistered one) well past the old dense-map / binary-search
    /// crossover dimension.
    #[test]
    fn slot_map_resolves_large_patterns() {
        let n = 3000;
        let mut pb = PatternBuilder::new(n);
        for i in 0..n {
            pb.add(i, i);
            if i > 0 {
                pb.add(i, i - 1);
                pb.add(i - 1, i);
            }
            // A few long-range couplings to exercise probe collisions.
            pb.add(i, (i * 7 + 13) % n);
        }
        let pattern = CscPattern::from_entries(n, &pb.entries).unwrap();
        let map = SlotMap::build(&pattern);
        for c in 0..n {
            for (r, s) in pattern.col_entries(c) {
                assert_eq!(map.get(r, c), Some(s), "({r}, {c})");
            }
        }
        // Spot-check structural zeros.
        for i in 0..n {
            let r = (i * 31 + 5) % n;
            let c = (i * 17 + 2) % n;
            assert_eq!(map.get(r, c), pattern.index_of(r, c), "({r}, {c})");
        }
    }

    /// A large tridiagonal solve through the workspace exercises the hash
    /// slot path end-to-end (every stamp above the old dense-map limit).
    #[test]
    fn large_sparse_stamp_and_solve() {
        let n = 2048;
        let mut pb = PatternBuilder::new(n);
        for i in 0..n {
            pb.add(i, i);
            if i > 0 {
                pb.add(i - 1, i);
                pb.add(i, i - 1);
            }
        }
        let mut ws = StampWorkspace::from_pattern(pb);
        ws.begin();
        for i in 0..n {
            ws.add(i, i, 4.0);
            if i > 0 {
                ws.add(i - 1, i, -1.0);
                ws.add(i, i - 1, -1.0);
            }
        }
        ws.rhs_add(0, 1.0);
        let x = ws.solve().unwrap().to_vec();
        for i in 0..n {
            let mut r = 4.0 * x[i];
            if i > 0 {
                r -= x[i - 1];
            }
            if i + 1 < n {
                r -= x[i + 1];
            }
            let b = if i == 0 { 1.0 } else { 0.0 };
            assert!((r - b).abs() < 1e-10, "row {i}");
        }
        assert_eq!(ws.stats().symbolic_analyses, 1);
    }
}
