//! `circuit` — a small SPICE-like transient circuit simulator.
//!
//! The simulator implements Modified Nodal Analysis (MNA) with per-timestep
//! Newton–Raphson iteration and trapezoidal companion models for reactive
//! elements. It supports the device set needed to reproduce the experiments
//! of Stievano et al., DATE 2002:
//!
//! * linear elements: [`devices::Resistor`], [`devices::Capacitor`],
//!   [`devices::Inductor`], [`devices::CoupledInductors`]
//! * sources: [`devices::VoltageSource`], [`devices::CurrentSource`] driven
//!   by [`devices::SourceWaveform`] (DC, trapezoidal pulse, PWL, bit pattern)
//! * nonlinear devices: [`devices::Diode`], [`devices::Mosfet`] (Level 1)
//! * distributed elements: [`devices::IdealLine`] (method of characteristics)
//!   and lossy coupled multiconductor lines via [`mtl`] ladder expansion
//! * user-defined behavioral elements through the public [`Device`] trait
//!   (used by the `macromodel` crate to install PW-RBF port models)
//!
//! # Quickstart: an RC low-pass step response
//!
//! ```
//! use circuit::{Circuit, GROUND, TranParams};
//! use circuit::devices::{Capacitor, Resistor, SourceWaveform, VoltageSource};
//!
//! # fn main() -> Result<(), circuit::Error> {
//! let mut ckt = Circuit::new();
//! let n_in = ckt.node("in");
//! let n_out = ckt.node("out");
//! ckt.add(VoltageSource::new("vin", n_in, GROUND, SourceWaveform::dc(1.0)));
//! ckt.add(Resistor::new("r1", n_in, n_out, 1e3));
//! ckt.add(Capacitor::new("c1", n_out, GROUND, 1e-9));
//! let result = ckt.transient(TranParams::new(1e-8, 5e-6))?;
//! let v_end = *result.voltage(n_out).values().last().unwrap();
//! assert!((v_end - 1.0).abs() < 1e-3); // fully charged after 5 tau
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod devices;
pub mod lint;
pub mod mna;
pub mod mtl;
pub mod netlist;
pub mod solver;
pub mod transient;
pub mod waveform;
pub mod workspace;

pub use mna::{EvalCtx, Mode};
pub use netlist::{Circuit, DeviceId, Node, GROUND};
pub use transient::{TranParams, TranResult};
pub use waveform::Waveform;
pub use workspace::{PatternBuilder, SolveStats, StampWorkspace};

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The Newton iteration failed to converge.
    NonConvergence {
        /// Analysis during which the failure happened.
        analysis: String,
        /// Simulation time of the failing step (seconds; 0 for DC).
        time: f64,
        /// Iterations attempted.
        iterations: usize,
    },
    /// The MNA matrix is singular (e.g. floating subcircuit without gmin).
    SingularMatrix {
        /// Analysis during which the failure happened.
        analysis: String,
    },
    /// A device parameter is out of its valid range.
    InvalidParameter {
        /// Device label.
        device: String,
        /// Description of the violated constraint.
        message: String,
    },
    /// Invalid analysis setup (non-positive timestep, empty circuit, ...).
    InvalidAnalysis {
        /// Description of the problem.
        message: String,
    },
    /// A numerical kernel error that could not be mapped to a more specific
    /// simulator error.
    Numeric(numkit::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NonConvergence {
                analysis,
                time,
                iterations,
            } => write!(
                f,
                "newton iteration did not converge in {analysis} at t = {time:.4e} s after {iterations} iterations"
            ),
            Error::SingularMatrix { analysis } => {
                write!(f, "singular MNA matrix in {analysis} (floating node?)")
            }
            Error::InvalidParameter { device, message } => {
                write!(f, "invalid parameter on device '{device}': {message}")
            }
            Error::InvalidAnalysis { message } => write!(f, "invalid analysis: {message}"),
            Error::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<numkit::Error> for Error {
    fn from(e: numkit::Error) -> Self {
        Error::Numeric(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// The device abstraction: anything that can stamp itself into the MNA
/// system. External crates implement this to add behavioral elements.
///
/// # Contract
///
/// * `register` declares every matrix position the device may ever write,
///   across all analysis modes. It is called once when a solver workspace is
///   built ([`Circuit::make_workspace`]); the positions become cached value
///   slots. Writing to an undeclared position still works — the pattern
///   grows dynamically — but costs an extra symbolic analysis.
/// * `stamp` must add the device's linearized contributions for the
///   candidate solution in `ctx` to the workspace. It is called once per
///   Newton iteration and must not mutate logical state (interior
///   mutability for iteration-local limiting caches is permitted).
/// * `init_state` is called once after the DC operating point with the DC
///   solution; `accept_step` after every accepted transient step.
/// * Devices requiring branch unknowns report the count via `num_branches`
///   and receive their first absolute unknown index via `set_branch_base`.
///
/// The `Any` supertrait allows typed access to installed devices through
/// [`Circuit::device_mut`] (e.g. updating a source value between sweep
/// points without rebuilding the netlist).
pub trait Device: std::any::Any {
    /// Human-readable instance label (used in error messages).
    fn label(&self) -> &str;

    /// Number of extra branch-current unknowns this device needs.
    fn num_branches(&self) -> usize {
        0
    }

    /// Receives the absolute index of the first branch unknown.
    fn set_branch_base(&mut self, base: usize) {
        let _ = base;
    }

    /// Whether the device requires Newton iteration (nonlinear or
    /// history-dependent within a step).
    fn is_nonlinear(&self) -> bool {
        false
    }

    /// Declares the device's potential matrix positions (see the contract).
    fn register(&self, pb: &mut PatternBuilder) {
        let _ = pb;
    }

    /// Adds the device's linearized MNA contributions.
    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace);

    /// Called once with the converged DC operating point.
    fn init_state(&mut self, ctx: &EvalCtx<'_>) {
        let _ = ctx;
    }

    /// Called with the converged solution after each accepted timestep.
    fn accept_step(&mut self, ctx: &EvalCtx<'_>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = Error::NonConvergence {
            analysis: "tran".into(),
            time: 1e-9,
            iterations: 50,
        };
        assert!(e.to_string().contains("converge"));
        assert!(Error::SingularMatrix {
            analysis: "dc".into()
        }
        .to_string()
        .contains("singular"));
        assert!(Error::InvalidParameter {
            device: "r1".into(),
            message: "negative resistance".into()
        }
        .to_string()
        .contains("r1"));
        assert!(Error::InvalidAnalysis {
            message: "dt".into()
        }
        .to_string()
        .contains("dt"));
        let ne: Error = numkit::Error::EmptyInput.into();
        assert!(ne.to_string().contains("numeric"));
        use std::error::Error as _;
        assert!(ne.source().is_some());
    }
}
