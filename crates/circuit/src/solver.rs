//! Newton–Raphson solver and DC operating point with gmin stepping.
//!
//! All solves run through a persistent [`StampWorkspace`]: the stamp pattern
//! and the LU symbolic structure are computed once per circuit and reused
//! across Newton iterations, timesteps, and (for sweep harnesses) entire
//! analyses.

use crate::mna::{EvalCtx, Mode};
use crate::netlist::Circuit;
use crate::workspace::StampWorkspace;
use crate::{Error, Result};

/// Absolute voltage convergence tolerance (volts).
const VNTOL: f64 = 1e-6;
/// Absolute current convergence tolerance (amperes), used for branch unknowns.
const ABSTOL: f64 = 1e-9;
/// Relative convergence tolerance.
const RELTOL: f64 = 1e-3;
/// Maximum Newton iterations per solve.
const MAX_ITER: usize = 200;
/// Per-iteration clamp on node-voltage updates (volts); damps MOSFET chains.
const MAX_DV: f64 = 1.0;

/// Result of a Newton solve, with iteration diagnostics.
#[derive(Debug, Clone)]
pub struct NewtonOutcome {
    /// Converged solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Matrix factorizations performed during this solve (one per
    /// iteration; equals `iterations` unless the workspace had to repeat a
    /// stamping pass).
    pub factorizations: usize,
}

/// Solves the nonlinear MNA system at the given mode by Newton iteration.
///
/// `x0` is the initial guess (length must equal `circuit.unknown_count()`).
/// `gmin` is added from every node to ground for numerical robustness.
/// `ws` is the persistent solver workspace built by
/// [`Circuit::make_workspace`]; reusing one workspace across calls is what
/// caches the symbolic LU structure.
///
/// # Errors
///
/// * [`Error::NonConvergence`] when iterations are exhausted.
/// * [`Error::SingularMatrix`] when the Jacobian cannot be factored.
pub fn solve_newton(
    circuit: &Circuit,
    mode: Mode,
    x0: &[f64],
    gmin: f64,
    analysis: &str,
    ws: &mut StampWorkspace,
) -> Result<NewtonOutcome> {
    let n = circuit.unknown_count();
    let n_v = circuit.n_nodes() - 1;
    debug_assert_eq!(x0.len(), n);
    debug_assert_eq!(ws.n(), n);
    let mut x = x0.to_vec();
    let fac_before = ws.stats().factorizations;

    for it in 0..MAX_ITER {
        ws.begin();
        // gmin from every node to ground.
        for i in 0..n_v {
            ws.add(i, i, gmin);
        }
        let ctx = EvalCtx {
            x: &x,
            n_nodes: circuit.n_nodes(),
            mode,
        };
        for dev in circuit.devices() {
            dev.stamp(&ctx, ws);
        }
        let x_new = ws.solve().map_err(|_| Error::SingularMatrix {
            analysis: analysis.to_string(),
        })?;

        // Damped update: clamp the largest node-voltage change.
        let mut max_dv = 0.0_f64;
        for i in 0..n_v {
            max_dv = max_dv.max((x_new[i] - x[i]).abs());
        }
        let alpha = if max_dv > MAX_DV {
            MAX_DV / max_dv
        } else {
            1.0
        };

        let mut converged = alpha == 1.0;
        for i in 0..n {
            let dx = x_new[i] - x[i];
            let tol = if i < n_v {
                VNTOL + RELTOL * x_new[i].abs()
            } else {
                ABSTOL + RELTOL * x_new[i].abs()
            };
            if dx.abs() > tol {
                converged = false;
            }
            x[i] += alpha * dx;
        }
        if converged {
            return Ok(NewtonOutcome {
                x,
                iterations: it + 1,
                factorizations: ws.stats().factorizations - fac_before,
            });
        }
    }
    Err(Error::NonConvergence {
        analysis: analysis.to_string(),
        time: mode.time(),
        iterations: MAX_ITER,
    })
}

/// Computes the DC operating point with gmin stepping.
///
/// First tries a direct Newton solve at the circuit's gmin. On failure,
/// starts from a heavily damped system (`gmin = 1e-2`) and relaxes it decade
/// by decade, reusing each solution as the next initial guess.
///
/// # Errors
///
/// * [`Error::NonConvergence`] if even the stepped continuation fails.
/// * [`Error::SingularMatrix`] for structurally singular circuits.
pub fn dc_operating_point(circuit: &mut Circuit) -> Result<Vec<f64>> {
    let mut ws = circuit.make_workspace();
    dc_operating_point_ws(circuit, &mut ws, None)
}

/// [`dc_operating_point`] against a caller-held workspace, optionally
/// warm-started from a previous solution (`x0`).
///
/// Sweep harnesses use this to change one source value between solves while
/// keeping the cached stamp pattern and LU structure, and to start each
/// point's Newton iteration from the neighboring point's solution (voltage
/// continuation). A failed warm start falls back to the cold-start gmin
/// stepping path.
///
/// # Errors
///
/// Same failure modes as [`dc_operating_point`].
pub fn dc_operating_point_ws(
    circuit: &mut Circuit,
    ws: &mut StampWorkspace,
    x0: Option<&[f64]>,
) -> Result<Vec<f64>> {
    circuit.finalize();
    let n = circuit.unknown_count();
    if n == 0 {
        return Err(Error::InvalidAnalysis {
            message: "circuit has no unknowns (add nodes and devices first)".into(),
        });
    }
    let target_gmin = circuit.gmin();
    let start = match x0 {
        Some(prev) => prev.to_vec(),
        None => vec![0.0; n],
    };

    match solve_newton(
        circuit,
        Mode::Dc,
        &start,
        target_gmin,
        "dc operating point",
        ws,
    ) {
        Ok(out) => return Ok(out.x),
        Err(Error::SingularMatrix { .. }) => {
            return Err(Error::SingularMatrix {
                analysis: "dc operating point".into(),
            })
        }
        Err(_) => { /* fall through to gmin stepping */ }
    }

    let mut x = vec![0.0; n];
    let mut gmin = 1e-2;
    loop {
        let out = solve_newton(circuit, Mode::Dc, &x, gmin, "dc gmin stepping", ws)?;
        x = out.x;
        if gmin <= target_gmin {
            return Ok(x);
        }
        gmin = (gmin * 0.1).max(target_gmin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{
        CurrentSource, Diode, DiodeParams, Resistor, SourceWaveform, VoltageSource,
    };
    use crate::netlist::GROUND;

    #[test]
    fn resistive_divider_dc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(3.0)));
        ckt.add(Resistor::new("r1", a, b, 1e3));
        ckt.add(Resistor::new("r2", b, GROUND, 2e3));
        let x = ckt.dc_operating_point().unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(CurrentSource::new("i", GROUND, a, SourceWaveform::dc(1e-3)));
        ckt.add(Resistor::new("r", a, GROUND, 1e3));
        let x = ckt.dc_operating_point().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn diode_forward_drop() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(5.0)));
        ckt.add(Resistor::new("r", a, b, 1e3));
        ckt.add(Diode::new("d", b, GROUND, DiodeParams::default()));
        let x = ckt.dc_operating_point().unwrap();
        let vd = x[1];
        assert!(vd > 0.4 && vd < 0.9, "diode drop {vd} out of range");
        // Current through R must equal diode current.
        let ir = (5.0 - vd) / 1e3;
        assert!(ir > 3e-3 && ir < 5e-3);
    }

    #[test]
    fn floating_node_held_by_gmin() {
        // A node connected only through a capacitor would be floating at DC;
        // gmin keeps the matrix solvable and pins it near ground.
        use crate::devices::Capacitor;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(1.0)));
        ckt.add(Capacitor::new("c", a, b, 1e-12));
        let x = ckt.dc_operating_point().unwrap();
        assert!(x[1].abs() < 1e-6);
    }

    #[test]
    fn empty_circuit_rejected() {
        let mut ckt = Circuit::new();
        assert!(matches!(
            ckt.dc_operating_point(),
            Err(Error::InvalidAnalysis { .. })
        ));
    }
}
