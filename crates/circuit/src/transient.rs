//! Fixed-step transient analysis.

use crate::mna::{EvalCtx, Mode};
use crate::netlist::{Circuit, DeviceId, Node};
use crate::waveform::Waveform;
use crate::workspace::SolveStats;
use crate::{solver, Error, Result};

/// Transient analysis parameters.
#[derive(Debug, Clone, Copy)]
pub struct TranParams {
    /// Fixed timestep (seconds).
    pub dt: f64,
    /// Stop time (seconds); the analysis covers `0..=t_stop`.
    pub t_stop: f64,
    /// Skip the initial DC operating point and start from all-zeros
    /// (useful for circuits that are known to start discharged). Note that
    /// the stored `t = 0` snapshot is then the all-zero vector; device
    /// initial conditions (e.g. `Capacitor::with_ic`) take effect from the
    /// first step.
    pub skip_dc: bool,
    /// Force the dense O(n³) solver backend instead of the sparse LU — the
    /// reference path for golden-agreement comparisons. Far too slow for
    /// large circuits; leave `false` outside validation harnesses.
    pub dense_solver: bool,
}

impl TranParams {
    /// Creates parameters with the given step and stop time.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        TranParams {
            dt,
            t_stop,
            skip_dc: false,
            dense_solver: false,
        }
    }

    /// Returns a copy that skips the initial operating point.
    pub fn with_skip_dc(mut self) -> Self {
        self.skip_dc = true;
        self
    }

    /// Returns a copy that runs on the dense reference backend (golden
    /// comparisons against the sparse solver).
    pub fn with_dense_solver(mut self) -> Self {
        self.dense_solver = true;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.dt <= 0.0 || !self.dt.is_finite() {
            return Err(Error::InvalidAnalysis {
                message: format!("timestep must be positive, got {}", self.dt),
            });
        }
        if self.t_stop <= 0.0 || self.t_stop < self.dt || !self.t_stop.is_finite() {
            return Err(Error::InvalidAnalysis {
                message: format!(
                    "stop time must be positive and at least one step, got {}",
                    self.t_stop
                ),
            });
        }
        Ok(())
    }
}

/// Result of a transient analysis: the full solution history.
#[derive(Debug, Clone)]
pub struct TranResult {
    time: Vec<f64>,
    /// `solutions[k]` is the full unknown vector at `time[k]`.
    solutions: Vec<Vec<f64>>,
    /// Newton iterations summed over all steps (efficiency metric).
    pub total_newton_iterations: usize,
    /// Workspace diagnostics accumulated over the whole analysis (including
    /// the initial DC operating point). A well-behaved circuit shows exactly
    /// one symbolic analysis here.
    pub solve_stats: SolveStats,
}

impl TranResult {
    /// Time axis (seconds), including `t = 0`.
    pub fn time(&self) -> &[f64] {
        &self.time
    }

    /// Number of stored time points.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the result is empty (never true for a successful analysis).
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Voltage waveform of `node`.
    pub fn voltage(&self, node: Node) -> Waveform {
        let vals = if node.is_ground() {
            vec![0.0; self.time.len()]
        } else {
            let i = node.index() - 1;
            self.solutions.iter().map(|x| x[i]).collect()
        };
        Waveform::from_parts(self.time.clone(), vals)
    }

    /// Branch-current waveform for branch `k` of device `id`.
    ///
    /// The caller provides the circuit to resolve the branch index.
    ///
    /// # Panics
    ///
    /// Panics if the device has no branch `k`.
    pub fn branch_current(&self, circuit: &Circuit, id: DeviceId, k: usize) -> Waveform {
        let idx = circuit.branch_index(id, k);
        let vals = self.solutions.iter().map(|x| x[idx]).collect();
        Waveform::from_parts(self.time.clone(), vals)
    }

    /// Raw solution vector at step `k`.
    pub fn solution(&self, k: usize) -> &[f64] {
        &self.solutions[k]
    }
}

/// Runs the transient analysis on `circuit`.
///
/// Sequence: DC operating point (unless skipped) → device state
/// initialization → fixed-step trapezoidal time stepping with per-step
/// Newton iteration.
///
/// # Errors
///
/// Propagates solver failures annotated with the failing time.
pub fn run(circuit: &mut Circuit, params: TranParams) -> Result<TranResult> {
    params.validate()?;
    circuit.finalize();
    let n = circuit.unknown_count();
    if n == 0 {
        return Err(Error::InvalidAnalysis {
            message: "circuit has no unknowns".into(),
        });
    }
    // One persistent workspace for the whole analysis: the stamp pattern and
    // the LU symbolic structure are shared between the DC operating point
    // and every timestep.
    let mut ws = if params.dense_solver {
        circuit.make_workspace_dense()
    } else {
        circuit.make_workspace()
    };

    // 1. Initial condition.
    let x0 = if params.skip_dc {
        vec![0.0; n]
    } else {
        solver::dc_operating_point_ws(circuit, &mut ws, None)?
    };
    let n_nodes = circuit.n_nodes();
    {
        let ctx = EvalCtx {
            x: &x0,
            n_nodes,
            mode: Mode::Dc,
        };
        for dev in circuit.devices_mut() {
            dev.init_state(&ctx);
        }
    }

    let n_steps = (params.t_stop / params.dt).round() as usize;
    let mut time = Vec::with_capacity(n_steps + 1);
    let mut solutions = Vec::with_capacity(n_steps + 1);
    time.push(0.0);
    solutions.push(x0.clone());

    let gmin = circuit.gmin();
    let mut x_prev = x0;
    let mut total_iters = 0;

    for k in 1..=n_steps {
        let t = k as f64 * params.dt;
        let mode = Mode::Tran { t, dt: params.dt };
        let out = solver::solve_newton(circuit, mode, &x_prev, gmin, "transient", &mut ws)?;
        total_iters += out.iterations;
        let ctx = EvalCtx {
            x: &out.x,
            n_nodes,
            mode,
        };
        for dev in circuit.devices_mut() {
            dev.accept_step(&ctx);
        }
        time.push(t);
        solutions.push(out.x.clone());
        x_prev = out.x;
    }

    Ok(TranResult {
        time,
        solutions,
        total_newton_iterations: total_iters,
        solve_stats: ws.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Inductor, Resistor, SourceWaveform, VoltageSource};
    use crate::netlist::GROUND;

    #[test]
    fn params_validation() {
        assert!(TranParams::new(0.0, 1.0).validate().is_err());
        assert!(TranParams::new(1e-9, 0.0).validate().is_err());
        assert!(TranParams::new(1e-9, 1e-10).validate().is_err());
        assert!(TranParams::new(1e-9, 1e-6).validate().is_ok());
        assert!(TranParams::new(1e-9, 1e-6).with_skip_dc().skip_dc);
        assert!(TranParams::new(1e-9, 1e-6).with_dense_solver().dense_solver);
    }

    #[test]
    fn dense_backend_matches_sparse_backend() {
        let build = || {
            let mut ckt = Circuit::new();
            let nin = ckt.node("in");
            let mut prev = nin;
            ckt.add(VoltageSource::new(
                "v",
                nin,
                GROUND,
                SourceWaveform::step(0.0, 1.0, 1e-10),
            ));
            for k in 0..6 {
                let next = ckt.node(format!("n{k}"));
                ckt.add(Resistor::new(format!("r{k}"), prev, next, 50.0));
                ckt.add(Capacitor::new(format!("c{k}"), next, GROUND, 2e-12));
                prev = next;
            }
            (ckt, prev)
        };
        let params = TranParams::new(2e-11, 2e-9);
        let (mut ckt_s, out_s) = build();
        let sparse = ckt_s.transient(params).unwrap();
        let (mut ckt_d, out_d) = build();
        let dense = ckt_d.transient(params.with_dense_solver()).unwrap();
        let vs = sparse.voltage(out_s);
        let vd = dense.voltage(out_d);
        for (a, b) in vs.values().iter().zip(vd.values()) {
            assert!((a - b).abs() < 1e-9, "backend mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn rc_charge_matches_analytic() {
        let (r, c) = (1e3, 1e-9);
        let tau = r * c;
        let mut ckt = Circuit::new();
        let nin = ckt.node("in");
        let nout = ckt.node("out");
        // Source steps from 0 to 1 V at t = 0+ via pulse with tiny rise.
        ckt.add(VoltageSource::new(
            "v",
            nin,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-12),
        ));
        ckt.add(Resistor::new("r", nin, nout, r));
        ckt.add(Capacitor::new("c", nout, GROUND, c));
        let res = ckt
            .transient(TranParams::new(tau / 200.0, 5.0 * tau))
            .unwrap();
        let v = res.voltage(nout);
        // Compare against 1 - exp(-t/tau) at a few points.
        for frac in [0.5, 1.0, 2.0, 4.0] {
            let t = frac * tau;
            let expect = 1.0 - (-t / tau).exp();
            let got = v.sample_at(t);
            assert!(
                (got - expect).abs() < 5e-3,
                "t={t:.3e}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn rl_current_rise() {
        let (r, l) = (10.0, 1e-6);
        let tau = l / r;
        let mut ckt = Circuit::new();
        let nin = ckt.node("in");
        let nmid = ckt.node("mid");
        ckt.add(VoltageSource::new(
            "v",
            nin,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-12),
        ));
        ckt.add(Resistor::new("r", nin, nmid, r));
        let ind = ckt.add(Inductor::new("l", nmid, GROUND, l));
        let res = ckt
            .transient(TranParams::new(tau / 200.0, 5.0 * tau))
            .unwrap();
        let i = res.branch_current(&ckt, ind, 0);
        let i_final = *i.values().last().unwrap();
        assert!((i_final - 0.1).abs() < 1e-3, "final current {i_final}");
        let at_tau = i.sample_at(tau);
        let expect = 0.1 * (1.0 - (-1.0_f64).exp());
        assert!((at_tau - expect).abs() < 1e-3);
    }

    #[test]
    fn lc_oscillator_energy_bounded() {
        // Trapezoidal integration preserves the amplitude of an LC tank.
        let (l, c) = (1e-6, 1e-9);
        let mut ckt = Circuit::new();
        let n1 = ckt.node("tank");
        ckt.add(Capacitor::new("c", n1, GROUND, c).with_ic(1.0));
        ckt.add(Inductor::new("l", n1, GROUND, l));
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l * c).sqrt());
        let period = 1.0 / f0;
        let res = ckt
            .transient(TranParams::new(period / 400.0, 10.0 * period).with_skip_dc())
            .unwrap();
        let v = res.voltage(n1);
        let max_late: f64 = v
            .values()
            .iter()
            .skip(v.len() * 9 / 10)
            .fold(0.0_f64, |m, &x| m.max(x.abs()));
        // Amplitude after 9 periods still close to 1 V (no numerical damping).
        assert!(max_late > 0.95 && max_late < 1.05, "amplitude {max_late}");
    }

    #[test]
    fn result_accessors() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(1.0)));
        ckt.add(Resistor::new("r", a, GROUND, 1.0));
        let res = ckt.transient(TranParams::new(1e-9, 1e-8)).unwrap();
        assert_eq!(res.len(), 11);
        assert!(!res.is_empty());
        assert_eq!(res.voltage(GROUND).values()[0], 0.0);
        assert_eq!(res.solution(0).len(), ckt.unknown_count());
        assert!(res.total_newton_iterations >= 10);
    }
}
