//! Lossy multiconductor transmission lines as RLGC ladder networks.
//!
//! The DATE-2002 crosstalk experiment (Fig. 3/4) uses a 3-conductor lossy
//! on-MCM interconnect (two signal lands over a reference plane) with dc
//! resistance, skin effect and dielectric loss. This module expands such a
//! line into a cascade of lumped coupled RLGC segments:
//!
//! * series: per-conductor dc resistance + coupled inductance matrix, plus a
//!   per-conductor R‖L ladder fitted to the `R_dc + R_s √f` skin-effect
//!   profile over the signal band;
//! * shunt: self capacitance to ground, mutual capacitance between
//!   conductors, and a dielectric-loss conductance proportional to the
//!   capacitance at the reference frequency.
//!
//! With ≥ 8 segments per spatial wavelength the ladder reproduces delay,
//! characteristic impedance, attenuation and both near/far-end crosstalk of
//! the distributed line to within a few percent — sufficient for the
//! macromodel-vs-reference comparisons of the paper, which use the *same*
//! interconnect model on both sides of the comparison.

use crate::devices::{Capacitor, CoupledInductors, Resistor};
use crate::netlist::{Circuit, Node};
use crate::{Error, Result, GROUND};
use numkit::Matrix;

/// Per-unit-length description of a uniform multiconductor lossy line.
#[derive(Debug, Clone)]
pub struct CoupledLineSpec {
    /// Number of signal conductors (excluding the reference plane).
    pub conductors: usize,
    /// Self inductance per conductor (H/m), `l_self[j]`.
    pub l_self: Vec<f64>,
    /// Mutual inductance between conductor pairs (H/m), full symmetric
    /// matrix with zeros on the diagonal.
    pub l_mutual: Matrix,
    /// Self capacitance to the reference (F/m).
    pub c_self: Vec<f64>,
    /// Mutual capacitance between conductor pairs (F/m), symmetric, zero
    /// diagonal.
    pub c_mutual: Matrix,
    /// DC resistance per conductor (Ω/m).
    pub r_dc: Vec<f64>,
    /// Skin-effect coefficient per conductor (Ω/(m·√Hz)): the series
    /// resistance grows as `R_dc + r_skin √f`.
    pub r_skin: Vec<f64>,
    /// Dielectric loss tangent (dimensionless).
    pub loss_tangent: f64,
    /// Reference frequency for the dielectric-loss conductance (Hz).
    pub f_ref: f64,
    /// Physical length (m).
    pub length: f64,
}

impl CoupledLineSpec {
    /// The reconstructed Fig.-3 on-MCM structure of the paper: two signal
    /// lands over a reference plane, 0.1 m long, lossy and dispersive.
    ///
    /// Several printed values are corrupted in the available scan; the
    /// choices below are physically consistent with a thin-film MCM line
    /// (Z0 ≈ 65 Ω, Td ≈ 0.7 ns over 0.1 m) and are recorded in
    /// EXPERIMENTS.md as reconstructed parameters.
    pub fn mcm_date02() -> Self {
        let l11 = 446.6e-9;
        let l12 = 60.6e-9;
        let c11 = 106.6e-12;
        let c12 = 6.6e-12;
        CoupledLineSpec {
            conductors: 2,
            l_self: vec![l11, l11],
            l_mutual: Matrix::from_rows(&[&[0.0, l12], &[l12, 0.0]]).expect("static shape"),
            c_self: vec![c11, c11],
            c_mutual: Matrix::from_rows(&[&[0.0, c12], &[c12, 0.0]]).expect("static shape"),
            r_dc: vec![60.6, 60.6],
            r_skin: vec![1.6e-3, 1.6e-3],
            loss_tangent: 0.02,
            f_ref: 1e9,
            length: 0.1,
        }
    }

    /// A `k`-conductor lossy bus over a reference plane: 50 Ω-class traces
    /// with inductive/capacitive coupling that decays geometrically with
    /// conductor separation (nearest neighbors couple at ~20 % / ~7 %, each
    /// further lane a factor 3 weaker). The scaling workload for the sparse
    /// solver — expanded at high segment counts this produces the
    /// thousands-of-unknowns MNA systems the Gilbert–Peierls path targets.
    pub fn bus(conductors: usize, length: f64) -> Self {
        let l11 = 350e-9;
        let c11 = 140e-12;
        let mut l_mutual = Matrix::zeros(conductors, conductors);
        let mut c_mutual = Matrix::zeros(conductors, conductors);
        for i in 0..conductors {
            for j in 0..conductors {
                if i != j {
                    let decay = 3.0_f64.powi((i.abs_diff(j) - 1) as i32);
                    l_mutual.set(i, j, 70e-9 / decay);
                    c_mutual.set(i, j, 10e-12 / decay);
                }
            }
        }
        CoupledLineSpec {
            conductors,
            l_self: vec![l11; conductors],
            l_mutual,
            c_self: vec![c11; conductors],
            c_mutual,
            r_dc: vec![5.0; conductors],
            r_skin: vec![1.0e-3; conductors],
            loss_tangent: 0.02,
            f_ref: 1e9,
            length,
        }
    }

    /// A single-conductor lossy line used by the Fig.-6 receiver validation:
    /// 50 Ω-class PCB trace, `length` meters long.
    pub fn lossy_single(length: f64) -> Self {
        CoupledLineSpec {
            conductors: 1,
            l_self: vec![350e-9],
            l_mutual: Matrix::zeros(1, 1),
            c_self: vec![140e-12],
            c_mutual: Matrix::zeros(1, 1),
            r_dc: vec![5.0],
            r_skin: vec![1.0e-3],
            loss_tangent: 0.02,
            f_ref: 1e9,
            length,
        }
    }

    /// Nominal characteristic impedance of conductor `j` (isolated).
    pub fn z0(&self, j: usize) -> f64 {
        (self.l_self[j] / self.c_self[j]).sqrt()
    }

    /// Nominal one-way delay (s) of conductor `j`.
    pub fn delay(&self, j: usize) -> f64 {
        self.length * (self.l_self[j] * self.c_self[j]).sqrt()
    }

    fn validate(&self) -> Result<()> {
        let k = self.conductors;
        let shape_ok = self.l_self.len() == k
            && self.c_self.len() == k
            && self.r_dc.len() == k
            && self.r_skin.len() == k
            && self.l_mutual.rows() == k
            && self.l_mutual.cols() == k
            && self.c_mutual.rows() == k
            && self.c_mutual.cols() == k;
        if !shape_ok || k == 0 {
            return Err(Error::InvalidParameter {
                device: "coupled line".into(),
                message: "per-conductor parameter lists must match `conductors`".into(),
            });
        }
        if self.length <= 0.0 {
            return Err(Error::InvalidParameter {
                device: "coupled line".into(),
                message: format!("length must be positive, got {}", self.length),
            });
        }
        for j in 0..k {
            if self.l_self[j] <= 0.0 || self.c_self[j] <= 0.0 || self.r_dc[j] < 0.0 {
                return Err(Error::InvalidParameter {
                    device: "coupled line".into(),
                    message: format!("non-physical parameters on conductor {j}"),
                });
            }
        }
        Ok(())
    }
}

/// Handle to the expanded line: the port nodes at both ends.
#[derive(Debug, Clone)]
pub struct ExpandedLine {
    /// Near-end node per conductor.
    pub near: Vec<Node>,
    /// Far-end node per conductor.
    pub far: Vec<Node>,
    /// Number of segments used.
    pub segments: usize,
}

/// Number of R‖L sections in the skin-effect ladder.
const SKIN_SECTIONS: usize = 3;

/// Fits `SKIN_SECTIONS` parallel R‖L sections (in series) whose combined
/// real part approximates `rs * sqrt(f)` over `[f_lo, f_hi]`.
///
/// Each section `i` contributes `R_i (f/f_i)^2 / (1 + (f/f_i)^2)` to the
/// series resistance with crossover frequency `f_i`; with `f_i` log-spaced,
/// the `R_i` follow from a non-negative least-squares fit on a log grid.
///
/// Returns `(r_i, l_i)` pairs; an empty vector if `rs == 0`.
pub fn fit_skin_ladder(rs: f64, f_lo: f64, f_hi: f64) -> Vec<(f64, f64)> {
    if rs <= 0.0 {
        return Vec::new();
    }
    let n = SKIN_SECTIONS;
    // Crossover frequencies log-spaced across the band.
    let fcs: Vec<f64> = (0..n)
        .map(|i| f_lo * (f_hi / f_lo).powf((i as f64 + 0.5) / n as f64))
        .collect();
    // Least squares on a log-spaced evaluation grid.
    let m = 24;
    let grid: Vec<f64> = (0..m)
        .map(|i| f_lo * (f_hi / f_lo).powf(i as f64 / (m - 1) as f64))
        .collect();
    let mut a = Matrix::zeros(m, n);
    let mut b = vec![0.0; m];
    for (r, &f) in grid.iter().enumerate() {
        for (c, &fc) in fcs.iter().enumerate() {
            let x = (f / fc) * (f / fc);
            a.set(r, c, x / (1.0 + x));
        }
        b[r] = rs * f.sqrt();
    }
    let sol = numkit::lstsq::robust_ls(&a, &b)
        .map(|fit| fit.coeffs)
        .unwrap_or_else(|_| vec![rs * f_hi.sqrt() / n as f64; n]);
    sol.iter()
        .zip(&fcs)
        .filter(|(&r, _)| r > 0.0)
        .map(|(&r, &fc)| (r, r / (2.0 * std::f64::consts::PI * fc)))
        .collect()
}

/// Evaluates the real part of the fitted ladder at frequency `f`.
pub fn skin_ladder_resistance(ladder: &[(f64, f64)], f: f64) -> f64 {
    let w = 2.0 * std::f64::consts::PI * f;
    ladder
        .iter()
        .map(|&(r, l)| {
            let x = w * l / r;
            r * x * x / (1.0 + x * x)
        })
        .sum()
}

/// Expands `spec` into `ckt` as `segments` coupled RLGC cells and returns
/// the port nodes.
///
/// `f_band` is the `(f_lo, f_hi)` band used to fit the skin-effect ladder;
/// use roughly `(1/t_bit, 1/t_rise)` of the intended signals.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for inconsistent specs or a
/// non-positive segment count.
pub fn expand_coupled_line(
    ckt: &mut Circuit,
    spec: &CoupledLineSpec,
    segments: usize,
    f_band: (f64, f64),
) -> Result<ExpandedLine> {
    spec.validate()?;
    if segments == 0 {
        return Err(Error::InvalidParameter {
            device: "coupled line".into(),
            message: "segment count must be positive".into(),
        });
    }
    let k = spec.conductors;
    let dz = spec.length / segments as f64;

    // Pre-fit the skin ladder per conductor (per unit length, then scaled).
    let ladders: Vec<Vec<(f64, f64)>> = (0..k)
        .map(|j| fit_skin_ladder(spec.r_skin[j], f_band.0, f_band.1))
        .collect();

    // Node grid: column 0 = near ports, column `segments` = far ports.
    let mut columns: Vec<Vec<Node>> = Vec::with_capacity(segments + 1);
    let near: Vec<Node> = (0..k).map(|j| ckt.node(format!("mtl_n{j}_s0"))).collect();
    columns.push(near.clone());
    for s in 1..=segments {
        let col: Vec<Node> = (0..k).map(|j| ckt.node(format!("mtl_n{j}_s{s}"))).collect();
        columns.push(col);
    }

    // Dense coupled inductance matrix for one segment.
    let mut lseg = Matrix::zeros(k, k);
    for i in 0..k {
        lseg.set(i, i, spec.l_self[i] * dz);
        for j in 0..k {
            if i != j {
                lseg.set(i, j, spec.l_mutual.get(i, j) * dz);
            }
        }
    }

    let g_diel: Vec<f64> = (0..k)
        .map(|j| 2.0 * std::f64::consts::PI * spec.f_ref * spec.loss_tangent * spec.c_self[j] * dz)
        .collect();

    for s in 0..segments {
        // --- series path: Rdc -> skin ladder -> coupled L ---
        let mut heads: Vec<Node> = Vec::with_capacity(k);
        for j in 0..k {
            let mut cur = columns[s][j];
            // dc resistance
            let n_r = ckt.node(format!("mtl_rdc{j}_s{s}"));
            let r_val = (spec.r_dc[j] * dz).max(1e-6);
            ckt.add(Resistor::new(format!("rdc{j}_{s}"), cur, n_r, r_val));
            cur = n_r;
            // skin-effect ladder: R‖L sections in series
            for (q, &(r_pul, l_pul)) in ladders[j].iter().enumerate() {
                let n_next = ckt.node(format!("mtl_sk{j}_{q}_s{s}"));
                ckt.add(Resistor::new(
                    format!("rsk{j}_{q}_{s}"),
                    cur,
                    n_next,
                    r_pul * dz,
                ));
                ckt.add(crate::devices::Inductor::new(
                    format!("lsk{j}_{q}_{s}"),
                    cur,
                    n_next,
                    (l_pul * dz).max(1e-15),
                ));
                cur = n_next;
            }
            heads.push(cur);
        }
        // coupled bulk inductance from heads to the next column
        let a_nodes = heads;
        let b_nodes: Vec<Node> = (0..k).map(|j| columns[s + 1][j]).collect();
        ckt.add(CoupledInductors::new(
            format!("lmtl_s{s}"),
            a_nodes,
            b_nodes,
            lseg.clone(),
        ));

        // --- shunt at the far column of this segment ---
        for j in 0..k {
            let n = columns[s + 1][j];
            ckt.add(Capacitor::new(
                format!("cself{j}_{s}"),
                n,
                GROUND,
                spec.c_self[j] * dz,
            ));
            if g_diel[j] > 0.0 {
                ckt.add(Resistor::new(
                    format!("gdiel{j}_{s}"),
                    n,
                    GROUND,
                    1.0 / g_diel[j],
                ));
            }
            for m in (j + 1)..k {
                let cm = spec.c_mutual.get(j, m);
                if cm > 0.0 {
                    ckt.add(Capacitor::new(
                        format!("cmut{j}_{m}_{s}"),
                        n,
                        columns[s + 1][m],
                        cm * dz,
                    ));
                }
            }
        }
    }
    // Shunt elements at the near column (half-cell correction omitted; with
    // the segment counts used here its effect is below the comparison noise).
    for j in 0..k {
        ckt.add(Capacitor::new(
            format!("cself{j}_near"),
            columns[0][j],
            GROUND,
            spec.c_self[j] * dz * 0.5,
        ));
    }

    Ok(ExpandedLine {
        near: columns[0].clone(),
        far: columns[segments].clone(),
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Resistor, SourceWaveform, VoltageSource};
    use crate::transient::TranParams;

    #[test]
    fn skin_fit_tracks_sqrt_f() {
        let rs = 1.6e-3;
        let ladder = fit_skin_ladder(rs, 1e7, 2e10);
        assert!(!ladder.is_empty());
        // Within the fitted band the ladder should follow rs*sqrt(f) within
        // a factor-of-two envelope (3 sections give a coarse staircase).
        for f in [1e8_f64, 1e9, 1e10] {
            let target = rs * f.sqrt();
            let got = skin_ladder_resistance(&ladder, f);
            assert!(
                got > 0.3 * target && got < 2.5 * target,
                "f={f:.1e}: got {got:.3}, target {target:.3}"
            );
        }
        assert!(fit_skin_ladder(0.0, 1e7, 1e10).is_empty());
    }

    #[test]
    fn spec_presets_are_valid() {
        let s = CoupledLineSpec::mcm_date02();
        assert!(s.validate().is_ok());
        assert!((s.z0(0) - 64.7).abs() < 1.0, "z0 = {}", s.z0(0));
        assert!(
            (s.delay(0) - 0.69e-9).abs() < 0.05e-9,
            "td = {}",
            s.delay(0)
        );
        let single = CoupledLineSpec::lossy_single(0.1);
        assert!(single.validate().is_ok());
        assert!((single.z0(0) - 50.0).abs() < 1.0);
    }

    #[test]
    fn bus_spec_is_valid_and_coupling_decays() {
        let s = CoupledLineSpec::bus(4, 0.2);
        assert!(s.validate().is_ok());
        assert!((s.z0(0) - 50.0).abs() < 1.0);
        // Geometric decay with lane separation, symmetric.
        assert!(s.l_mutual.get(0, 1) > s.l_mutual.get(0, 2));
        assert!(s.c_mutual.get(0, 2) > s.c_mutual.get(0, 3));
        assert_eq!(s.l_mutual.get(1, 3), s.l_mutual.get(3, 1));
        assert_eq!(s.l_mutual.get(2, 2), 0.0);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = CoupledLineSpec::mcm_date02();
        s.length = 0.0;
        assert!(s.validate().is_err());
        let mut s = CoupledLineSpec::mcm_date02();
        s.r_dc = vec![1.0];
        assert!(s.validate().is_err());
        let mut s = CoupledLineSpec::mcm_date02();
        s.l_self[0] = -1.0;
        assert!(s.validate().is_err());
    }

    /// A matched single-conductor ladder approximates delay and amplitude of
    /// the ideal line.
    #[test]
    fn single_line_ladder_delay_and_amplitude() {
        let spec = CoupledLineSpec {
            r_dc: vec![0.1],
            r_skin: vec![0.0],
            loss_tangent: 0.0,
            ..CoupledLineSpec::lossy_single(0.1)
        };
        let z0 = spec.z0(0);
        let td = spec.delay(0);
        let mut ckt = Circuit::new();
        let nsrc = ckt.node("src");
        let line = expand_coupled_line(&mut ckt, &spec, 16, (1e7, 1e10)).unwrap();
        ckt.add(VoltageSource::new(
            "v",
            nsrc,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 100e-12),
        ));
        ckt.add(Resistor::new("rs", nsrc, line.near[0], z0));
        ckt.add(Resistor::new("rl", line.far[0], GROUND, z0));
        let res = ckt.transient(TranParams::new(5e-12, 4e-9)).unwrap();
        let vfar = res.voltage(line.far[0]);
        // Mid-amplitude crossing near the nominal delay (+ half the edge).
        let crossings = vfar.threshold_crossings(0.25);
        assert!(!crossings.is_empty());
        let t_arrival = crossings[0].time;
        assert!(
            (t_arrival - (td + 50e-12)).abs() < 0.15 * td,
            "arrival {t_arrival:.3e} vs td {td:.3e}"
        );
        // Settles near 0.5 V (matched divider) minus small resistive loss.
        let v_final = vfar.sample_at(3.9e-9);
        assert!((v_final - 0.5).abs() < 0.05, "v_final {v_final}");
    }

    /// Far-end crosstalk on the coupled MCM structure is nonzero but small
    /// compared with the driven signal, and the quiet line stays quiet at DC.
    #[test]
    fn coupled_ladder_crosstalk_sanity() {
        let spec = CoupledLineSpec::mcm_date02();
        let z0 = spec.z0(0);
        let mut ckt = Circuit::new();
        let nsrc = ckt.node("src");
        let line = expand_coupled_line(&mut ckt, &spec, 8, (1e8, 2e10)).unwrap();
        ckt.add(VoltageSource::new(
            "v",
            nsrc,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 150e-12),
        ));
        ckt.add(Resistor::new("rs", nsrc, line.near[0], z0));
        ckt.add(Resistor::new("r_near2", line.near[1], GROUND, z0));
        ckt.add(Resistor::new("rl1", line.far[0], GROUND, z0));
        ckt.add(Resistor::new("rl2", line.far[1], GROUND, z0));
        let res = ckt.transient(TranParams::new(1e-11, 3e-9)).unwrap();
        let v_active = res.voltage(line.far[0]);
        let v_quiet = res.voltage(line.far[1]);
        let peak_active = v_active
            .values()
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()));
        let peak_quiet = v_quiet
            .values()
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert!(peak_active > 0.3, "active peak {peak_active}");
        assert!(
            peak_quiet > 1e-4 && peak_quiet < 0.5 * peak_active,
            "crosstalk peak {peak_quiet} vs active {peak_active}"
        );
    }

    #[test]
    fn zero_segments_rejected() {
        let mut ckt = Circuit::new();
        let spec = CoupledLineSpec::lossy_single(0.1);
        assert!(expand_coupled_line(&mut ckt, &spec, 0, (1e7, 1e10)).is_err());
    }
}
