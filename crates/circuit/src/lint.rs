//! Structural lint audit of a netlist: static MNA-pattern diagnostics that
//! run *before* any factorization.
//!
//! The audit inspects what devices declare ([`crate::Device::register`]) and
//! what they actually write ([`crate::Device::stamp`], observed through a
//! recording [`StampWorkspace`] whose registered pattern is empty so every
//! write is captured) and reports:
//!
//! * **C001** — the MNA pattern is structurally singular: no assignment of
//!   numeric values can make the matrix nonsingular, so factorization is
//!   guaranteed to fail. Detected by maximum-bipartite-matching structural
//!   rank ([`numkit::structure::structural_rank`]) over the union of device
//!   patterns and the solver's gmin node diagonals — exactly the pattern
//!   [`crate::Circuit::make_workspace`] builds.
//! * **C002** — a floating node: no device registers any position in the
//!   node's row or column, so only the gmin leak ties it to ground. Usually a
//!   wiring mistake (a port left dangling).
//! * **C003** — a device stamps matrix positions it never registered. The
//!   workspace tolerates this (the pattern grows at the next solve) but each
//!   growth costs an extra symbolic analysis in the hot loop.
//! * **C004** — a device registers positions it never stamps in either DC or
//!   transient mode: harmless, but each one is a structural nonzero the
//!   symbolic analysis must assume filled.
//!
//! Severity policy and rendering live in the `macromodel` crate's lint
//! framework; this module only produces raw findings.

use crate::mna::{EvalCtx, Mode};
use crate::netlist::{Circuit, Node};
use crate::workspace::{PatternBuilder, StampWorkspace};
use std::collections::BTreeSet;

/// A raw structural finding. `code` is one of the stable `C00x` diagnostic
/// codes documented on [the module](self); `subject` names the node or
/// device concerned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructuralIssue {
    /// Stable diagnostic code (`"C001"` … `"C004"`).
    pub code: &'static str,
    /// Node or device the finding is about.
    pub subject: String,
    /// Human-readable description.
    pub message: String,
}

fn fmt_positions(set: &BTreeSet<(usize, usize)>) -> String {
    const SHOW: usize = 4;
    let mut s = String::new();
    for (i, (r, c)) in set.iter().take(SHOW).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("({r}, {c})"));
    }
    if set.len() > SHOW {
        s.push_str(&format!(", … {} total", set.len()));
    }
    s
}

/// Audits a circuit's structural health with a default 1 ns transient probe
/// step. See [`audit_circuit_with_dt`].
pub fn audit_circuit(ckt: &mut Circuit) -> Vec<StructuralIssue> {
    audit_circuit_with_dt(ckt, 1e-9)
}

/// Audits a circuit's structural health. See the [module docs](self) for the
/// finding catalogue.
///
/// The audit stamps every device once in DC mode, runs
/// [`crate::Device::init_state`] on the all-zero solution (mirroring the
/// solver lifecycle), and stamps once more in transient mode with step `dt`
/// (sampled macromodel devices require `dt` to equal their sample clock).
/// Device state is therefore left initialized at the zero solution: audit a
/// scratch circuit, or one that has not started simulating yet.
pub fn audit_circuit_with_dt(ckt: &mut Circuit, dt: f64) -> Vec<StructuralIssue> {
    ckt.finalize();
    let n = ckt.unknown_count();
    let n_nodes = ckt.n_nodes();
    let nv = n_nodes - 1;
    let mut issues = Vec::new();
    if n == 0 {
        return issues;
    }

    // Declared pattern per device.
    let mut registered: Vec<BTreeSet<(usize, usize)>> = Vec::with_capacity(ckt.n_devices());
    for dev in ckt.devices() {
        let mut pb = PatternBuilder::new(n);
        dev.register(&mut pb);
        registered.push(pb.entries().iter().copied().collect());
    }

    // C002: node-voltage unknowns no device pattern touches.
    let mut touched = vec![false; nv];
    for set in &registered {
        for &(r, c) in set {
            if r < nv {
                touched[r] = true;
            }
            if c < nv {
                touched[c] = true;
            }
        }
    }
    for (i, &t) in touched.iter().enumerate() {
        if !t {
            let name = ckt.node_name(Node::from_raw(i + 1)).to_string();
            issues.push(StructuralIssue {
                code: "C002",
                subject: name.clone(),
                message: format!(
                    "node '{name}' is floating: no device stamps it, only the gmin leak to ground"
                ),
            });
        }
    }

    // C001: structural rank of the exact pattern the solver workspace sees
    // (device registrations plus the gmin diagonal on every node row).
    let mut entries: Vec<(usize, usize)> = (0..nv).map(|i| (i, i)).collect();
    for set in &registered {
        entries.extend(set.iter().copied());
    }
    let rank = numkit::structure::structural_rank(n, &entries);
    if rank < n {
        let empty = numkit::structure::empty_rows(n, &entries);
        let detail = if empty.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = empty
                .iter()
                .take(4)
                .map(|&r| format!("branch equation row {r}"))
                .collect();
            format!(" (structurally empty: {})", rows.join(", "))
        };
        issues.push(StructuralIssue {
            code: "C001",
            subject: "mna".to_string(),
            message: format!(
                "MNA pattern is structurally singular: structural rank {rank} < {n} unknowns{detail}"
            ),
        });
    }

    // C003/C004: observe actual stamp writes through a recording workspace.
    // DC pass, then init_state at the zero solution (the solver lifecycle),
    // then a transient pass — the union covers mode-dependent stamps.
    let x = vec![0.0; n];
    let mut written: Vec<BTreeSet<(usize, usize)>> = vec![BTreeSet::new(); ckt.n_devices()];
    let mut ws = StampWorkspace::recording(n);
    let dc = EvalCtx {
        x: &x,
        n_nodes,
        mode: Mode::Dc,
    };
    for (i, dev) in ckt.devices().iter().enumerate() {
        ws.begin();
        dev.stamp(&dc, &mut ws);
        written[i].extend(ws.overflow_entries().iter().map(|&(r, c, _)| (r, c)));
    }
    for dev in ckt.devices_mut() {
        dev.init_state(&dc);
    }
    let tran = EvalCtx {
        x: &x,
        n_nodes,
        mode: Mode::Tran { t: dt, dt },
    };
    for (i, dev) in ckt.devices().iter().enumerate() {
        ws.begin();
        dev.stamp(&tran, &mut ws);
        written[i].extend(ws.overflow_entries().iter().map(|&(r, c, _)| (r, c)));
    }

    for (i, dev) in ckt.devices().iter().enumerate() {
        let unregistered: BTreeSet<(usize, usize)> =
            written[i].difference(&registered[i]).copied().collect();
        if !unregistered.is_empty() {
            issues.push(StructuralIssue {
                code: "C003",
                subject: dev.label().to_string(),
                message: format!(
                    "device '{}' stamps positions it never registered: {} — each costs an extra \
                     symbolic analysis when the pattern grows",
                    dev.label(),
                    fmt_positions(&unregistered)
                ),
            });
        }
        let unstamped: BTreeSet<(usize, usize)> =
            registered[i].difference(&written[i]).copied().collect();
        if !unstamped.is_empty() {
            issues.push(StructuralIssue {
                code: "C004",
                subject: dev.label().to_string(),
                message: format!(
                    "device '{}' registers positions it never stamps (DC or transient): {}",
                    dev.label(),
                    fmt_positions(&unstamped)
                ),
            });
        }
    }

    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Capacitor, Resistor, SourceWaveform, VoltageSource};
    use crate::{Device, GROUND};

    fn codes(issues: &[StructuralIssue]) -> Vec<&'static str> {
        issues.iter().map(|i| i.code).collect()
    }

    #[test]
    fn healthy_rc_circuit_audits_clean() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("out");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(1.0)));
        ckt.add(Resistor::new("r", a, b, 1e3));
        ckt.add(Capacitor::new("c", b, GROUND, 1e-9));
        let issues = audit_circuit(&mut ckt);
        assert!(issues.is_empty(), "expected clean, got {issues:?}");
        // The audited circuit must still simulate.
        let res = ckt.transient(crate::TranParams::new(1e-9, 1e-7)).unwrap();
        let v = *res.voltage(b).values().last().unwrap();
        assert!((v - 1.0).abs() < 1e-2);
    }

    #[test]
    fn floating_node_is_reported_but_not_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let _orphan = ckt.node("orphan");
        ckt.add(Resistor::new("r", a, GROUND, 50.0));
        let issues = audit_circuit(&mut ckt);
        assert_eq!(codes(&issues), vec!["C002"]);
        assert!(issues[0].message.contains("orphan"));
    }

    /// A device that claims a branch unknown but registers and stamps
    /// nothing for its branch equation row: the canonical structurally
    /// singular two-node fixture.
    struct HalfWiredSource {
        label: String,
        node: Node,
        branch: usize,
    }

    impl Device for HalfWiredSource {
        fn label(&self) -> &str {
            &self.label
        }
        fn num_branches(&self) -> usize {
            1
        }
        fn set_branch_base(&mut self, base: usize) {
            self.branch = base;
        }
        fn register(&self, pb: &mut PatternBuilder) {
            // KCL coupling only: the branch equation row stays empty.
            crate::mna::register_branch_kcl(pb, self.node, GROUND, self.branch);
        }
        fn stamp(&self, _ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
            crate::mna::stamp_branch_kcl(ws, self.node, GROUND, self.branch);
        }
    }

    #[test]
    fn empty_branch_row_is_structurally_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add(Resistor::new("r", a, GROUND, 50.0));
        ckt.add(HalfWiredSource {
            label: "broken".into(),
            node: a,
            branch: 0,
        });
        let issues = audit_circuit(&mut ckt);
        assert!(
            codes(&issues).contains(&"C001"),
            "expected C001, got {issues:?}"
        );
        let c001 = issues.iter().find(|i| i.code == "C001").unwrap();
        assert!(c001.message.contains("structural rank"));
        assert!(c001.message.contains("branch equation row"));
    }

    /// A resistor-like device whose register/stamp disagree in both
    /// directions: registers the (0,0) diagonal it never writes, stamps the
    /// (1,1) diagonal it never declared.
    struct MismatchedStamp {
        label: String,
    }

    impl Device for MismatchedStamp {
        fn label(&self) -> &str {
            &self.label
        }
        fn register(&self, pb: &mut PatternBuilder) {
            pb.add(0, 0);
        }
        fn stamp(&self, _ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
            ws.add(1, 1, 1e-3);
        }
    }

    #[test]
    fn register_stamp_mismatch_reports_both_directions() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Resistor::new("ra", a, GROUND, 50.0));
        ckt.add(Resistor::new("rb", b, GROUND, 50.0));
        ckt.add(MismatchedStamp {
            label: "bad".into(),
        });
        let issues = audit_circuit(&mut ckt);
        let cs = codes(&issues);
        assert!(cs.contains(&"C003"), "got {issues:?}");
        assert!(cs.contains(&"C004"), "got {issues:?}");
        let c003 = issues.iter().find(|i| i.code == "C003").unwrap();
        assert_eq!(c003.subject, "bad");
        assert!(c003.message.contains("(1, 1)"));
        let c004 = issues.iter().find(|i| i.code == "C004").unwrap();
        assert!(c004.message.contains("(0, 0)"));
    }

    #[test]
    fn standard_devices_have_consistent_patterns() {
        // Every stock device must declare exactly what it stamps — the audit
        // itself is the regression test.
        use crate::devices::{
            CurrentSource, Diode, DiodeParams, Inductor, MosPolarity, Mosfet, MosfetParams,
        };
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(3.3)));
        ckt.add(Resistor::new("r", a, b, 1e3));
        ckt.add(Capacitor::new("cap", b, GROUND, 1e-12));
        ckt.add(Inductor::new("l", b, c, 1e-9));
        ckt.add(CurrentSource::new("i", c, GROUND, SourceWaveform::dc(1e-3)));
        ckt.add(Diode::new("d", c, GROUND, DiodeParams::default()));
        ckt.add(Mosfet::new(
            "m",
            a,
            b,
            GROUND,
            MosPolarity::Nmos,
            MosfetParams {
                vt0: 0.7,
                kp: 1e-4,
                w: 1e-5,
                l: 1e-6,
                lambda: 0.01,
            },
        ));
        let issues = audit_circuit(&mut ckt);
        let hard: Vec<_> = issues
            .iter()
            .filter(|i| i.code == "C001" || i.code == "C003")
            .collect();
        assert!(hard.is_empty(), "stock devices misbehave: {hard:?}");
    }
}
