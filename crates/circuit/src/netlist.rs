//! Circuit container: nodes, devices and analysis entry points.

use crate::workspace::{PatternBuilder, StampWorkspace};
use crate::{solver, transient, Device, Error, Result, TranParams, TranResult};

/// A circuit node handle.
///
/// Node 0 is always ground ([`GROUND`]). Nodes are created through
/// [`Circuit::node`] and are only meaningful for the circuit that created
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node(usize);

/// The ground (reference) node.
pub const GROUND: Node = Node(0);

impl Node {
    /// Constructs a node from a raw index. Intended for tests and internal
    /// use; regular code should obtain nodes from [`Circuit::node`].
    pub fn from_raw(i: usize) -> Self {
        Node(i)
    }

    /// Raw index of the node (0 = ground).
    #[inline]
    pub fn index(&self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    #[inline]
    pub fn is_ground(&self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Handle to a device added to a [`Circuit`], used to query branch currents
/// from analysis results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceId(pub(crate) usize);

/// A netlist: a set of nodes and devices, plus analysis entry points.
///
/// See the [crate-level documentation](crate) for a usage example.
pub struct Circuit {
    n_nodes: usize,
    node_names: Vec<String>,
    devices: Vec<Box<dyn Device>>,
    /// Branch base per device, relative to the start of the branch block
    /// (parallel to `devices`).
    branch_bases: Vec<usize>,
    n_branches: usize,
    /// Minimum conductance from every node to ground (numerical safety net).
    gmin: f64,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("n_nodes", &self.n_nodes)
            .field("n_devices", &self.devices.len())
            .field("n_branches", &self.n_branches)
            .finish()
    }
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            n_nodes: 1,
            node_names: vec!["gnd".to_string()],
            devices: Vec::new(),
            branch_bases: Vec::new(),
            n_branches: 0,
            gmin: 1e-12,
        }
    }

    /// Creates a new named node and returns its handle.
    pub fn node(&mut self, name: impl Into<String>) -> Node {
        let n = Node(self.n_nodes);
        self.n_nodes += 1;
        self.node_names.push(name.into());
        n
    }

    /// Adds a device and returns its handle.
    ///
    /// Branch unknowns are laid out lazily (see `Circuit::finalize`), so
    /// nodes and devices may be interleaved freely during construction.
    pub fn add<D: Device + 'static>(&mut self, device: D) -> DeviceId {
        let id = DeviceId(self.devices.len());
        self.branch_bases.push(self.n_branches);
        self.n_branches += device.num_branches();
        self.devices.push(Box::new(device));
        id
    }

    /// Assigns every device its absolute branch-unknown base. Called by the
    /// analyses before solving; safe to call repeatedly.
    pub(crate) fn finalize(&mut self) {
        let n_v = self.n_nodes - 1;
        for (dev, &rel) in self.devices.iter_mut().zip(&self.branch_bases) {
            dev.set_branch_base(n_v + rel);
        }
    }

    /// Number of nodes including ground.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Name of a node (for diagnostics).
    pub fn node_name(&self, node: Node) -> &str {
        &self.node_names[node.index()]
    }

    /// Number of devices.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Total number of MNA unknowns (node voltages + branch currents).
    pub fn unknown_count(&self) -> usize {
        (self.n_nodes - 1) + self.n_branches
    }

    /// Absolute unknown index of branch `k` of device `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a device of this circuit.
    pub fn branch_index(&self, id: DeviceId, k: usize) -> usize {
        (self.n_nodes - 1) + self.branch_bases[id.0] + k
    }

    /// Sets the minimum node-to-ground conductance (default `1e-12` S).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidAnalysis`] for non-positive values.
    pub fn set_gmin(&mut self, gmin: f64) -> Result<()> {
        if gmin <= 0.0 || !gmin.is_finite() {
            return Err(Error::InvalidAnalysis {
                message: format!("gmin must be positive and finite, got {gmin}"),
            });
        }
        self.gmin = gmin;
        Ok(())
    }

    /// Current gmin value.
    pub fn gmin(&self) -> f64 {
        self.gmin
    }

    /// Read access to the device list (for solvers).
    pub(crate) fn devices(&self) -> &[Box<dyn Device>] {
        &self.devices
    }

    /// Mutable access to the device list (for solvers).
    pub(crate) fn devices_mut(&mut self) -> &mut [Box<dyn Device>] {
        &mut self.devices
    }

    /// Typed mutable access to an installed device, e.g. to update a source
    /// value between sweep points without rebuilding the netlist. Returns
    /// `None` if `D` does not match the installed device type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a device of this circuit.
    pub fn device_mut<D: Device>(&mut self, id: DeviceId) -> Option<&mut D> {
        let dev: &mut dyn Device = self.devices[id.0].as_mut();
        let any: &mut dyn std::any::Any = dev;
        any.downcast_mut::<D>()
    }

    /// Builds the persistent solver workspace for this circuit: finalizes
    /// branch layout, collects every device's stamp pattern and sets up the
    /// slot-cached sparse (or small-system dense) backend.
    ///
    /// Reuse one workspace across repeated solves of the same circuit — the
    /// symbolic LU analysis is performed once and shared.
    pub fn make_workspace(&mut self) -> StampWorkspace {
        self.finalize();
        let n = self.unknown_count();
        let mut pb = PatternBuilder::new(n);
        // The solver's gmin safety net touches every node diagonal.
        for i in 0..self.n_nodes.saturating_sub(1) {
            pb.add(i, i);
        }
        for dev in &self.devices {
            dev.register(&mut pb);
        }
        StampWorkspace::from_pattern(pb)
    }

    /// Builds a workspace that forces the dense O(n³) backend regardless of
    /// system size — the reference solver for golden-agreement checks
    /// against the sparse path (see `TranParams::with_dense_solver`). Not
    /// for production use above a few hundred unknowns.
    pub fn make_workspace_dense(&mut self) -> StampWorkspace {
        self.finalize();
        StampWorkspace::dense(self.unknown_count())
    }

    /// Computes the DC operating point.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonConvergence`] or [`Error::SingularMatrix`] if the
    /// Newton iteration (with gmin stepping) fails.
    pub fn dc_operating_point(&mut self) -> Result<Vec<f64>> {
        solver::dc_operating_point(self)
    }

    /// Computes the DC operating point against a caller-held workspace,
    /// optionally warm-started from a previous solution — the fast path for
    /// DC sweeps (see [`solver::dc_operating_point_ws`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Circuit::dc_operating_point`].
    pub fn dc_operating_point_ws(
        &mut self,
        ws: &mut StampWorkspace,
        x0: Option<&[f64]>,
    ) -> Result<Vec<f64>> {
        solver::dc_operating_point_ws(self, ws, x0)
    }

    /// Runs a transient analysis (includes the initial DC operating point).
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures and invalid parameter errors.
    pub fn transient(&mut self, params: TranParams) -> Result<TranResult> {
        transient::run(self, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{Resistor, SourceWaveform, VoltageSource};

    #[test]
    fn node_handles() {
        assert!(GROUND.is_ground());
        assert_eq!(GROUND.to_string(), "gnd");
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert_eq!(a.index(), 1);
        assert!(!a.is_ground());
        assert_eq!(a.to_string(), "n1");
        assert_eq!(ckt.node_name(a), "a");
        assert_eq!(ckt.n_nodes(), 2);
    }

    #[test]
    fn unknown_counting_with_branches() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add(Resistor::new("r", a, b, 1.0));
        assert_eq!(ckt.unknown_count(), 2);
        let v = ckt.add(VoltageSource::new("v", a, GROUND, SourceWaveform::dc(1.0)));
        assert_eq!(ckt.unknown_count(), 3);
        assert_eq!(ckt.branch_index(v, 0), 2);
        assert_eq!(ckt.n_devices(), 2);
    }

    #[test]
    fn gmin_validation() {
        let mut ckt = Circuit::new();
        assert!(ckt.set_gmin(0.0).is_err());
        assert!(ckt.set_gmin(-1.0).is_err());
        assert!(ckt.set_gmin(f64::NAN).is_err());
        assert!(ckt.set_gmin(1e-9).is_ok());
        assert_eq!(ckt.gmin(), 1e-9);
    }

    #[test]
    fn debug_impl_nonempty() {
        let ckt = Circuit::new();
        assert!(format!("{ckt:?}").contains("Circuit"));
    }
}
