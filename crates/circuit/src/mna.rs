//! MNA conventions, evaluation context and stamping helpers.
//!
//! # Unknown layout
//!
//! The solution vector `x` contains the voltages of nodes `1..n_nodes`
//! (node 0 is ground and is not an unknown) followed by branch currents of
//! voltage-defined devices:
//!
//! ```text
//! x = [ v(1), v(2), ..., v(n-1) | i_b0, i_b1, ... ]
//! ```
//!
//! # Sign conventions
//!
//! Rows `0..n-1` are KCL equations written as "sum of currents *leaving* the
//! node = 0". A conductance `g` between `a` and `b` contributes `g (va - vb)`
//! leaving `a`. A constant current `c` leaving node `a` moves to the RHS as
//! `rhs[a] -= c` (see [`stamp_current_leaving`]).
//!
//! Branch currents are defined as flowing from the device's `a` terminal to
//! its `b` terminal *through the device*; the current therefore leaves node
//! `a` and enters node `b`.
//!
//! # Stamping versus registration
//!
//! Every `stamp_*` helper writing matrix positions has a `register_*` twin
//! that declares the same positions with a [`PatternBuilder`]. A device's
//! [`crate::Device::register`] should mirror its `stamp` so the workspace
//! pattern covers all modes (register the *union* of DC and transient
//! stamps).

use crate::netlist::Node;
use crate::workspace::{PatternBuilder, StampWorkspace};

/// The analysis mode a device is being stamped for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// DC operating point: capacitors open, inductors short.
    Dc,
    /// Transient step ending at time `t`, with step size `dt`.
    Tran {
        /// End time of the current step (seconds).
        t: f64,
        /// Step size (seconds).
        dt: f64,
    },
}

impl Mode {
    /// Time associated with the mode (0 for DC).
    pub fn time(&self) -> f64 {
        match self {
            Mode::Dc => 0.0,
            Mode::Tran { t, .. } => *t,
        }
    }

    /// Whether this is a transient stamp.
    pub fn is_tran(&self) -> bool {
        matches!(self, Mode::Tran { .. })
    }
}

/// Read-only view of a candidate or converged solution, passed to devices.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Candidate solution vector (layout described in the module docs).
    pub x: &'a [f64],
    /// Number of circuit nodes including ground.
    pub n_nodes: usize,
    /// Analysis mode (DC or transient time/step).
    pub mode: Mode,
}

impl<'a> EvalCtx<'a> {
    /// Voltage of `node` in the candidate solution (0 for ground).
    #[inline]
    pub fn v(&self, node: Node) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current at absolute unknown index `abs_branch`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range of the unknown vector.
    #[inline]
    pub fn branch(&self, abs_branch: usize) -> f64 {
        self.x[abs_branch]
    }

    /// Absolute unknown index of a node voltage (`None` for ground).
    #[inline]
    pub fn node_index(&self, node: Node) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }
}

/// Row/column index of a node in the MNA matrix (`None` = ground row).
#[inline]
pub(crate) fn idx(node: Node) -> Option<usize> {
    if node.is_ground() {
        None
    } else {
        Some(node.index() - 1)
    }
}

/// Stamps a conductance `g` between nodes `a` and `b`.
pub fn stamp_conductance(ws: &mut StampWorkspace, a: Node, b: Node, g: f64) {
    if let Some(ia) = idx(a) {
        ws.add(ia, ia, g);
    }
    if let Some(ib) = idx(b) {
        ws.add(ib, ib, g);
    }
    if let (Some(ia), Some(ib)) = (idx(a), idx(b)) {
        ws.add(ia, ib, -g);
        ws.add(ib, ia, -g);
    }
}

/// Registers the positions touched by [`stamp_conductance`].
pub fn register_conductance(pb: &mut PatternBuilder, a: Node, b: Node) {
    if let Some(ia) = idx(a) {
        pb.add(ia, ia);
    }
    if let Some(ib) = idx(b) {
        pb.add(ib, ib);
    }
    if let (Some(ia), Some(ib)) = (idx(a), idx(b)) {
        pb.add(ia, ib);
        pb.add(ib, ia);
    }
}

/// Stamps a constant current `c` flowing out of node `a` and into node `b`
/// (through the device). Constants move to the right-hand side.
pub fn stamp_current_leaving(ws: &mut StampWorkspace, a: Node, b: Node, c: f64) {
    if let Some(ia) = idx(a) {
        ws.rhs_add(ia, -c);
    }
    if let Some(ib) = idx(b) {
        ws.rhs_add(ib, c);
    }
}

/// Stamps a Newton-linearized nonlinear current `i(v_ab)` flowing from `a`
/// to `b`: given the current value `i0` and conductance `g = di/dv` at the
/// candidate voltage `v0`, stamps `g` plus the constant `i0 - g*v0`.
pub fn stamp_linearized_current(
    ws: &mut StampWorkspace,
    a: Node,
    b: Node,
    i0: f64,
    g: f64,
    v0: f64,
) {
    stamp_conductance(ws, a, b, g);
    stamp_current_leaving(ws, a, b, i0 - g * v0);
}

/// Stamps the KCL coupling of a branch current `i` (absolute unknown index
/// `br`) defined as flowing from `a` to `b` through the device.
pub fn stamp_branch_kcl(ws: &mut StampWorkspace, a: Node, b: Node, br: usize) {
    if let Some(ia) = idx(a) {
        ws.add(ia, br, 1.0);
    }
    if let Some(ib) = idx(b) {
        ws.add(ib, br, -1.0);
    }
}

/// Registers the positions touched by [`stamp_branch_kcl`].
pub fn register_branch_kcl(pb: &mut PatternBuilder, a: Node, b: Node, br: usize) {
    if let Some(ia) = idx(a) {
        pb.add(ia, br);
    }
    if let Some(ib) = idx(b) {
        pb.add(ib, br);
    }
}

/// Adds `coeff * v(node)` to branch equation row `br`.
pub fn stamp_branch_voltage(ws: &mut StampWorkspace, br: usize, node: Node, coeff: f64) {
    if let Some(i) = idx(node) {
        ws.add(br, i, coeff);
    }
}

/// Registers the position touched by [`stamp_branch_voltage`].
pub fn register_branch_voltage(pb: &mut PatternBuilder, br: usize, node: Node) {
    if let Some(i) = idx(node) {
        pb.add(br, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::GROUND;

    fn n(i: usize) -> Node {
        Node::from_raw(i)
    }

    #[test]
    fn mode_accessors() {
        assert_eq!(Mode::Dc.time(), 0.0);
        assert!(!Mode::Dc.is_tran());
        let m = Mode::Tran { t: 1e-9, dt: 1e-12 };
        assert_eq!(m.time(), 1e-9);
        assert!(m.is_tran());
    }

    #[test]
    fn ctx_reads_voltages_and_branches() {
        let x = [1.0, 2.0, 42.0];
        let ctx = EvalCtx {
            x: &x,
            n_nodes: 3,
            mode: Mode::Dc,
        };
        assert_eq!(ctx.v(GROUND), 0.0);
        assert_eq!(ctx.v(n(1)), 1.0);
        assert_eq!(ctx.v(n(2)), 2.0);
        assert_eq!(ctx.branch(2), 42.0);
        assert_eq!(ctx.node_index(GROUND), None);
        assert_eq!(ctx.node_index(n(2)), Some(1));
    }

    #[test]
    fn conductance_stamp_pattern() {
        let mut ws = StampWorkspace::dense(2);
        stamp_conductance(&mut ws, n(1), n(2), 0.5);
        assert_eq!(ws.value_at(0, 0), 0.5);
        assert_eq!(ws.value_at(1, 1), 0.5);
        assert_eq!(ws.value_at(0, 1), -0.5);
        assert_eq!(ws.value_at(1, 0), -0.5);
        // Grounded side only touches one diagonal.
        let mut ws = StampWorkspace::dense(2);
        stamp_conductance(&mut ws, n(1), GROUND, 2.0);
        assert_eq!(ws.value_at(0, 0), 2.0);
        assert_eq!(ws.value_at(1, 1), 0.0);
    }

    #[test]
    fn current_stamp_signs() {
        let mut ws = StampWorkspace::dense(2);
        stamp_current_leaving(&mut ws, n(1), n(2), 1e-3);
        assert_eq!(ws.rhs()[0], -1e-3);
        assert_eq!(ws.rhs()[1], 1e-3);
        let mut ws = StampWorkspace::dense(2);
        stamp_current_leaving(&mut ws, GROUND, n(2), 2.0);
        assert_eq!(ws.rhs(), [0.0, 2.0]);
    }

    #[test]
    fn linearized_stamp_consistency() {
        // For a linear conductance i = g v, the linearized stamp must leave
        // zero constant on the RHS regardless of the linearization point.
        let mut ws = StampWorkspace::dense(1);
        let (g, v0) = (0.01, 0.7);
        let i0 = g * v0;
        stamp_linearized_current(&mut ws, n(1), GROUND, i0, g, v0);
        assert_eq!(ws.value_at(0, 0), g);
        assert!(ws.rhs()[0].abs() < 1e-18);
    }

    #[test]
    fn branch_stamps() {
        let mut ws = StampWorkspace::dense(3);
        stamp_branch_kcl(&mut ws, n(1), n(2), 2);
        assert_eq!(ws.value_at(0, 2), 1.0);
        assert_eq!(ws.value_at(1, 2), -1.0);
        stamp_branch_voltage(&mut ws, 2, n(1), 1.0);
        stamp_branch_voltage(&mut ws, 2, n(2), -1.0);
        assert_eq!(ws.value_at(2, 0), 1.0);
        assert_eq!(ws.value_at(2, 1), -1.0);
        stamp_branch_voltage(&mut ws, 2, GROUND, 5.0); // no-op
        assert_eq!(ws.value_at(2, 0), 1.0);
    }

    #[test]
    fn register_helpers_cover_stamp_positions() {
        let mut pb = PatternBuilder::new(3);
        register_conductance(&mut pb, n(1), n(2));
        register_branch_kcl(&mut pb, n(1), GROUND, 2);
        register_branch_voltage(&mut pb, 2, n(1));
        register_branch_voltage(&mut pb, 2, GROUND); // no-op
        let mut ws = StampWorkspace::from_pattern(pb);
        // Every registered position is writable without overflow; verify by
        // stamping and reading back.
        ws.begin();
        stamp_conductance(&mut ws, n(1), n(2), 2.0);
        stamp_branch_kcl(&mut ws, n(1), GROUND, 2);
        stamp_branch_voltage(&mut ws, 2, n(1), 1.0);
        assert_eq!(ws.value_at(0, 0), 2.0);
        assert_eq!(ws.value_at(0, 2), 1.0);
        assert_eq!(ws.value_at(2, 0), 1.0);
    }
}
