//! IBIS-style behavioral driver model: the paper's comparison baseline.
//!
//! The model follows the structure of the Input/output Buffer Information
//! Specification (IBIS 2.1): static pullup/pulldown I–V tables, a fixed die
//! capacitance `C_comp`, and switching-coefficient waveforms `Ku(t)`,
//! `Kd(t)` that blend the two tables during an edge:
//!
//! ```text
//! i_out(v, t) = Ku(t) · I_pu(v) + Kd(t) · I_pd(v)
//! ```
//!
//! `Ku/Kd` are recovered from *two* rising and two falling V–T waveforms
//! captured into different resistive fixtures (the "two-waveform method"):
//! at each instant the two load equations form a 2×2 system in `(Ku, Kd)`.
//!
//! The essential limitation the paper demonstrates: the I–V tables are
//! one-dimensional and `Ku/Kd` are fixed time templates, so the model cannot
//! react to load dynamics during a transition — which is exactly where the
//! PW-RBF model wins.

use crate::drivers::CmosDriverSpec;
use crate::extraction::{capture_driver, driver_output_iv};
use crate::{Error, Result};
use circuit::devices::{Capacitor, Resistor, SourceWaveform, VoltageSource};
use circuit::mna::{register_conductance, stamp_linearized_current, EvalCtx};
use circuit::{Circuit, Device, Node, PatternBuilder, StampWorkspace, GROUND};
use numkit::interp::Pwl;
use serde::{Deserialize, Serialize};

/// Process corner of an IBIS model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IbisCorner {
    /// Weak process, high C, slow edges.
    Slow,
    /// Nominal.
    Typical,
    /// Strong process, low C, fast edges.
    Fast,
}

impl IbisCorner {
    /// `(current scale, capacitance scale, time scale)` relative to typical.
    pub fn scales(&self) -> (f64, f64, f64) {
        match self {
            IbisCorner::Slow => (0.80, 1.15, 1.25),
            IbisCorner::Typical => (1.0, 1.0, 1.0),
            IbisCorner::Fast => (1.25, 0.85, 0.80),
        }
    }
}

/// An extracted IBIS-style model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IbisModel {
    /// Source device name.
    pub name: String,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Current delivered by the output vs. pad voltage, logic high.
    pub pullup: Pwl,
    /// Current delivered vs. pad voltage, logic low.
    pub pulldown: Pwl,
    /// Die capacitance (F).
    pub c_comp: f64,
    /// Switching-table timestep (s).
    pub dt: f64,
    /// Rising-edge pullup coefficient over time.
    pub ku_rise: Vec<f64>,
    /// Rising-edge pulldown coefficient.
    pub kd_rise: Vec<f64>,
    /// Falling-edge pullup coefficient.
    pub ku_fall: Vec<f64>,
    /// Falling-edge pulldown coefficient.
    pub kd_fall: Vec<f64>,
}

/// Extraction configuration for [`IbisModel::extract`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IbisExtractConfig {
    /// Number of points in the I–V tables.
    pub iv_points: usize,
    /// Fixture resistance for the V–T waveforms (Ω).
    pub r_fixture: f64,
    /// Sampling step of the switching tables (s).
    pub dt: f64,
    /// Captured edge duration (s).
    pub t_table: f64,
}

impl Default for IbisExtractConfig {
    fn default() -> Self {
        IbisExtractConfig {
            iv_points: 41,
            r_fixture: 50.0,
            dt: 25e-12,
            t_table: 4e-9,
        }
    }
}

impl IbisModel {
    /// Extracts an IBIS model from a transistor-level driver spec.
    ///
    /// Sequence: pullup/pulldown DC sweeps over `[-vdd/2, 1.5 vdd]`, then
    /// rising and falling transitions into `r_fixture`-to-ground and
    /// `r_fixture`-to-VDD fixtures, and finally the per-sample 2×2 solve for
    /// `Ku/Kd`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures from the extraction runs.
    pub fn extract(spec: &CmosDriverSpec, cfg: IbisExtractConfig) -> Result<IbisModel> {
        let vdd = spec.vdd;
        let v_range = (-0.5 * vdd, 1.5 * vdd);
        // The pullup and pulldown table sweeps are independent: one on a
        // scoped worker, one here.
        let (pu, pd) = std::thread::scope(|s| {
            let pu = s.spawn(|| driver_output_iv(spec, true, v_range, cfg.iv_points));
            let pd = driver_output_iv(spec, false, v_range, cfg.iv_points);
            (join_worker(pu), pd)
        });
        let (pu, pd) = (pu?, pd?);
        let pullup = Pwl::new(pu.voltages.clone(), pu.currents)?;
        let pulldown = Pwl::new(pd.voltages.clone(), pd.currents)?;

        // Switching waveforms: settle for one bit, transition at t_bit.
        let t_bit = cfg.t_table;
        let capture = |rising: bool, to_vdd: bool| -> Result<(Vec<f64>, Vec<f64>)> {
            let pattern = if rising { "01" } else { "10" };
            let cap = capture_driver(
                spec,
                spec.pattern(pattern, t_bit),
                |ckt, pad| {
                    if to_vdd {
                        let vt = ckt.node("fix_v");
                        ckt.add(VoltageSource::new(
                            "v_fix",
                            vt,
                            GROUND,
                            SourceWaveform::dc(vdd),
                        ));
                        ckt.add(Resistor::new("r_fix", pad, vt, cfg.r_fixture));
                    } else {
                        ckt.add(Resistor::new("r_fix", pad, GROUND, cfg.r_fixture));
                    }
                    Ok(())
                },
                cfg.dt,
                2.0 * t_bit,
            )?;
            // Align the table to the logic edge at t_bit.
            let n = (cfg.t_table / cfg.dt).round() as usize;
            let mut v = Vec::with_capacity(n);
            let mut i = Vec::with_capacity(n);
            for k in 0..n {
                let t = t_bit + k as f64 * cfg.dt;
                v.push(cap.voltage.sample_at(t));
                i.push(cap.current.sample_at(t));
            }
            Ok((v, i))
        };

        // Four independent V–T waveform captures (rise/fall × two fixtures).
        let capture = &capture;
        let (c1r, c2r, c1f, c2f) = std::thread::scope(|s| {
            let c1r = s.spawn(move || capture(true, false));
            let c2r = s.spawn(move || capture(true, true));
            let c1f = s.spawn(move || capture(false, false));
            let c2f = capture(false, true);
            (join_worker(c1r), join_worker(c2r), join_worker(c1f), c2f)
        });
        let (v1r, i1r) = c1r?;
        let (v2r, i2r) = c2r?;
        let (v1f, i1f) = c1f?;
        let (v2f, i2f) = c2f?;

        let (ku_rise, kd_rise) =
            solve_switching(&pullup, &pulldown, &v1r, &i1r, &v2r, &i2r, (0.0, 1.0))?;
        let (ku_fall, kd_fall) =
            solve_switching(&pullup, &pulldown, &v1f, &i1f, &v2f, &i2f, (1.0, 0.0))?;

        Ok(IbisModel {
            name: spec.name.to_string(),
            vdd,
            pullup,
            pulldown,
            c_comp: spec.c_pad + 0.5e-12,
            dt: cfg.dt,
            ku_rise,
            kd_rise,
            ku_fall,
            kd_fall,
        })
    }

    /// Returns a corner-scaled copy (currents, capacitance, edge time).
    ///
    /// # Errors
    ///
    /// Never fails for valid models; propagates internal table rebuilds.
    pub fn with_corner(&self, corner: IbisCorner) -> Result<IbisModel> {
        let (si, sc, st) = corner.scales();
        let scale_pwl = |p: &Pwl| -> Result<Pwl> {
            Ok(Pwl::new(
                p.x().to_vec(),
                p.y().iter().map(|&y| y * si).collect(),
            )?)
        };
        Ok(IbisModel {
            name: format!("{}_{:?}", self.name, corner),
            vdd: self.vdd,
            pullup: scale_pwl(&self.pullup)?,
            pulldown: scale_pwl(&self.pulldown)?,
            c_comp: self.c_comp * sc,
            dt: self.dt * st,
            ku_rise: self.ku_rise.clone(),
            kd_rise: self.kd_rise.clone(),
            ku_fall: self.ku_fall.clone(),
            kd_fall: self.kd_fall.clone(),
        })
    }

    /// Duration of the switching tables (s).
    pub fn table_duration(&self) -> f64 {
        self.dt * self.ku_rise.len().max(1) as f64
    }

    /// Checks the structural invariants a consumer (circuit device or
    /// model-exchange loader) relies on: positive finite `dt` and `c_comp`,
    /// equal-length coefficient tables with at least one sample, finite
    /// coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] describing the first violation.
    pub fn validate(&self) -> Result<()> {
        if self.dt <= 0.0 || !self.dt.is_finite() {
            return Err(Error::InvalidSpec {
                message: format!("switching-table timestep must be positive, got {}", self.dt),
            });
        }
        if !self.vdd.is_finite() {
            return Err(Error::InvalidSpec {
                message: format!("supply voltage must be finite, got {}", self.vdd),
            });
        }
        if self.c_comp <= 0.0 || !self.c_comp.is_finite() {
            return Err(Error::InvalidSpec {
                message: format!("die capacitance must be positive, got {}", self.c_comp),
            });
        }
        let n = self.ku_rise.len();
        if n == 0 || self.kd_rise.len() != n || self.ku_fall.len() != n || self.kd_fall.len() != n {
            return Err(Error::InvalidSpec {
                message: "switching tables must be non-empty and equal in length".into(),
            });
        }
        let tables = [&self.ku_rise, &self.kd_rise, &self.ku_fall, &self.kd_fall];
        if tables.iter().any(|t| t.iter().any(|k| !k.is_finite())) {
            return Err(Error::InvalidSpec {
                message: "switching coefficients must be finite".into(),
            });
        }
        Ok(())
    }

    /// One-line structural summary (table sizes and die capacitance).
    pub fn summary(&self) -> String {
        format!(
            "IBIS '{}': {} I-V points (pu) / {} (pd), C_comp = {:.3e} F, \
             {} switching samples at dt = {:.3e} s",
            self.name,
            self.pullup.x().len(),
            self.pulldown.x().len(),
            self.c_comp,
            self.ku_rise.len(),
            self.dt
        )
    }

    /// Installs the output stage and `C_comp` at an existing node `pad`.
    pub fn instantiate_at(&self, ckt: &mut Circuit, pad: Node, pattern: &str, bit_time: f64) {
        ckt.add(IbisDriver::new(self.clone(), pad, pattern, bit_time));
        ckt.add(Capacitor::new(
            format!("{}_ccomp", self.name),
            pad,
            GROUND,
            self.c_comp,
        ));
    }

    /// Installs the model into `ckt` as a driver running `pattern` with the
    /// given bit time. Returns the output node.
    pub fn instantiate(&self, ckt: &mut Circuit, pattern: &str, bit_time: f64) -> Node {
        let out = ckt.node(format!("{}_out", self.name));
        self.instantiate_at(ckt, out, pattern, bit_time);
        out
    }
}

/// Unwraps a scoped worker, re-raising panics on the calling thread.
fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    handle
        .join()
        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
}

/// Per-sample 2×2 solve for the switching coefficients.
///
/// `(k_start, k_end)` are the known steady-state values of `Ku` before and
/// after the edge, used to regularize near-singular samples (start/end of
/// the transition where both fixtures see the same conditions).
#[allow(clippy::too_many_arguments)]
fn solve_switching(
    pullup: &Pwl,
    pulldown: &Pwl,
    v1: &[f64],
    i1: &[f64],
    v2: &[f64],
    i2: &[f64],
    (k_start, k_end): (f64, f64),
) -> Result<(Vec<f64>, Vec<f64>)> {
    if v1.len() != i1.len() || v2.len() != i2.len() || v1.len() != v2.len() {
        return Err(Error::InvalidSpec {
            message: "switching waveform lengths differ".into(),
        });
    }
    let n = v1.len();
    let mut ku = Vec::with_capacity(n);
    let mut kd = Vec::with_capacity(n);
    let mut prev = (k_start, 1.0 - k_start);
    for k in 0..n {
        let a11 = pullup.eval(v1[k]);
        let a12 = pulldown.eval(v1[k]);
        let a21 = pullup.eval(v2[k]);
        let a22 = pulldown.eval(v2[k]);
        let det = a11 * a22 - a12 * a21;
        let scale = a11.abs().max(a12.abs()).max(a21.abs()).max(a22.abs());
        let (u, d) = if det.abs() > 1e-6 * scale * scale && scale > 0.0 {
            let u = (i1[k] * a22 - a12 * i2[k]) / det;
            let d = (a11 * i2[k] - i1[k] * a21) / det;
            (u.clamp(-0.2, 1.4), d.clamp(-0.2, 1.4))
        } else {
            prev
        };
        prev = (u, d);
        ku.push(u);
        kd.push(d);
    }
    // Anchor the endpoints at the exact steady-state values.
    if n > 0 {
        ku[0] = k_start;
        kd[0] = 1.0 - k_start;
        ku[n - 1] = k_end;
        kd[n - 1] = 1.0 - k_end;
    }
    Ok((ku, kd))
}

/// A scheduled logic edge of the IBIS driver.
#[derive(Debug, Clone, Copy)]
struct Edge {
    t: f64,
    rising: bool,
}

/// The IBIS output stage as a circuit device (static tables + switching
/// coefficients). Pair with an explicit `C_comp` capacitor — or use
/// [`IbisModel::instantiate`], which adds both.
#[derive(Debug, Clone)]
pub struct IbisDriver {
    label: String,
    model: IbisModel,
    out: Node,
    edges: Vec<Edge>,
    initial_high: bool,
}

impl IbisDriver {
    /// Creates a driver producing `pattern` with the given bit time.
    ///
    /// # Panics
    ///
    /// Panics on an invalid pattern string (see
    /// [`SourceWaveform::bit_pattern`] for the convention).
    pub fn new(model: IbisModel, out: Node, pattern: &str, bit_time: f64) -> Self {
        let bits: Vec<bool> = pattern
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid bit character '{other}' in pattern"),
            })
            .collect();
        assert!(!bits.is_empty(), "pattern must not be empty");
        let mut edges = Vec::new();
        for k in 1..bits.len() {
            if bits[k] != bits[k - 1] {
                edges.push(Edge {
                    t: k as f64 * bit_time,
                    rising: bits[k],
                });
            }
        }
        IbisDriver {
            label: format!("{}_ibis_drv", model.name),
            model,
            out,
            edges,
            initial_high: bits[0],
        }
    }

    /// Switching coefficients at absolute time `t`.
    fn ku_kd_at(&self, t: f64) -> (f64, f64) {
        // Find the most recent edge at or before t.
        let mut state_high = self.initial_high;
        let mut active: Option<(f64, bool)> = None;
        for e in &self.edges {
            if e.t <= t {
                state_high = e.rising;
                active = Some((e.t, e.rising));
            } else {
                break;
            }
        }
        if let Some((t0, rising)) = active {
            let tau = t - t0;
            if tau < self.model.table_duration() {
                let (ku_tab, kd_tab) = if rising {
                    (&self.model.ku_rise, &self.model.kd_rise)
                } else {
                    (&self.model.ku_fall, &self.model.kd_fall)
                };
                let idx = tau / self.model.dt;
                let k0 = (idx.floor() as usize).min(ku_tab.len() - 1);
                let k1 = (k0 + 1).min(ku_tab.len() - 1);
                let f = (idx - k0 as f64).clamp(0.0, 1.0);
                return (
                    ku_tab[k0] + f * (ku_tab[k1] - ku_tab[k0]),
                    kd_tab[k0] + f * (kd_tab[k1] - kd_tab[k0]),
                );
            }
        }
        if state_high {
            (1.0, 0.0)
        } else {
            (0.0, 1.0)
        }
    }
}

impl Device for IbisDriver {
    fn label(&self) -> &str {
        &self.label
    }

    fn is_nonlinear(&self) -> bool {
        true
    }

    fn register(&self, pb: &mut PatternBuilder) {
        register_conductance(pb, self.out, GROUND);
    }

    fn stamp(&self, ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        let t = ctx.mode.time();
        let (ku, kd) = self.ku_kd_at(t);
        let v = ctx.v(self.out);
        // Delivered current and its slope from the PWL tables.
        let i_del = ku * self.model.pullup.eval(v) + kd * self.model.pulldown.eval(v);
        let g_del = ku * self.model.pullup.slope(v) + kd * self.model.pulldown.slope(v);
        // The device *injects* i_del into the node: current leaving = -i_del.
        stamp_linearized_current(ws, self.out, GROUND, -i_del, -g_del, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::md1;
    use circuit::TranParams;

    fn small_cfg() -> IbisExtractConfig {
        IbisExtractConfig {
            iv_points: 21,
            r_fixture: 50.0,
            dt: 50e-12,
            t_table: 3e-9,
        }
    }

    fn tiny_model() -> IbisModel {
        IbisModel {
            name: "tiny".into(),
            vdd: 3.3,
            pullup: Pwl::new(vec![0.0, 3.3], vec![0.05, 0.0]).unwrap(),
            pulldown: Pwl::new(vec![0.0, 3.3], vec![0.0, -0.05]).unwrap(),
            c_comp: 1e-12,
            dt: 50e-12,
            ku_rise: vec![0.0, 1.0],
            kd_rise: vec![1.0, 0.0],
            ku_fall: vec![1.0, 0.0],
            kd_fall: vec![0.0, 1.0],
        }
    }

    #[test]
    fn validate_rejects_non_finite_vdd() {
        // Regression: vdd had no finiteness check at all.
        assert!(tiny_model().validate().is_ok());
        let mut bad = tiny_model();
        bad.vdd = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = tiny_model();
        bad.vdd = f64::INFINITY;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn corner_scales() {
        assert_eq!(IbisCorner::Typical.scales(), (1.0, 1.0, 1.0));
        let (si, sc, st) = IbisCorner::Fast.scales();
        assert!(si > 1.0 && sc < 1.0 && st < 1.0);
        let (si, sc, st) = IbisCorner::Slow.scales();
        assert!(si < 1.0 && sc > 1.0 && st > 1.0);
    }

    #[test]
    fn extraction_produces_consistent_model() {
        let model = IbisModel::extract(&md1(), small_cfg()).unwrap();
        // Pullup sources current at v = 0, pulldown sinks at v = vdd.
        assert!(model.pullup.eval(0.0) > 10e-3);
        assert!(model.pulldown.eval(3.3) < -10e-3);
        // Steady-state coefficient anchors.
        assert_eq!(model.ku_rise[0], 0.0);
        assert_eq!(*model.ku_rise.last().unwrap(), 1.0);
        assert_eq!(model.ku_fall[0], 1.0);
        assert_eq!(*model.ku_fall.last().unwrap(), 0.0);
        // Coefficients stay within the clamped range.
        for k in model.ku_rise.iter().chain(&model.kd_rise) {
            assert!(*k >= -0.2 && *k <= 1.4);
        }
        assert!(model.table_duration() > 1e-9);
    }

    #[test]
    fn corner_model_scales_tables() {
        let model = IbisModel::extract(&md1(), small_cfg()).unwrap();
        let fast = model.with_corner(IbisCorner::Fast).unwrap();
        assert!(fast.pullup.eval(0.0) > model.pullup.eval(0.0));
        assert!(fast.c_comp < model.c_comp);
        assert!(fast.table_duration() < model.table_duration());
        let slow = model.with_corner(IbisCorner::Slow).unwrap();
        assert!(slow.pullup.eval(0.0) < model.pullup.eval(0.0));
    }

    /// The IBIS model must reproduce the reference behaviour on the very
    /// fixture it was extracted from (sanity of the two-waveform method).
    #[test]
    fn ibis_reproduces_extraction_fixture() {
        let spec = md1();
        let model = IbisModel::extract(&spec, small_cfg()).unwrap();
        // Reference: transistor-level into 50 Ω.
        let ref_cap = crate::extraction::capture_driver(
            &spec,
            spec.pattern("01", 3e-9),
            |ckt, pad| {
                ckt.add(Resistor::new("r", pad, GROUND, 50.0));
                Ok(())
            },
            50e-12,
            6e-9,
        )
        .unwrap();
        // IBIS model into the same fixture.
        let mut ckt = Circuit::new();
        let out = model.instantiate(&mut ckt, "01", 3e-9);
        ckt.add(Resistor::new("r", out, GROUND, 50.0));
        let res = ckt.transient(TranParams::new(50e-12, 6e-9)).unwrap();
        let v_ibis = res.voltage(out);
        // Compare after the edge has begun.
        let err = circuit::waveform::rms_difference(&v_ibis.window(2.5e-9, 6e-9), &ref_cap.voltage);
        assert!(err < 0.25, "rms error on extraction fixture {err}");
    }

    #[test]
    fn driver_schedule_states() {
        let model = IbisModel::extract(&md1(), small_cfg()).unwrap();
        let d = IbisDriver::new(model.clone(), Node::from_raw(1), "010", 5e-9);
        // Before the first edge: low.
        assert_eq!(d.ku_kd_at(1e-9), (0.0, 1.0));
        // Long after the rising edge at 5 ns: high.
        let (ku, kd) = d.ku_kd_at(5e-9 + model.table_duration() + 1e-9);
        assert_eq!((ku, kd), (1.0, 0.0));
        // Long after the falling edge at 10 ns: low again.
        let (ku, kd) = d.ku_kd_at(10e-9 + model.table_duration() + 1e-9);
        assert_eq!((ku, kd), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn driver_rejects_bad_pattern() {
        let model = IbisModel::extract(&md1(), small_cfg()).unwrap();
        IbisDriver::new(model, Node::from_raw(1), "0z", 1e-9);
    }
}
