//! `refdev` — transistor-level reference models of digital I/O ports and an
//! IBIS-style extractor/simulator baseline.
//!
//! The paper estimates macromodels from waveforms of *reference models*:
//! detailed transistor-level descriptions of commercial devices (a 74LVC244
//! octal buffer and IBM mainframe drivers/receivers). Those netlists are
//! proprietary, so this crate provides parameterized CMOS equivalents that
//! exercise the same identification path:
//!
//! * [`drivers`] — tapered CMOS inverter-chain output buffers with ESD clamp
//!   diodes and package parasitics; presets [`drivers::md1`] (3.3 V
//!   LVC-class), [`drivers::md2`] (1.8 V) and [`drivers::md3`] (1.5 V);
//! * [`receiver`] — input ports: pad capacitance, dual ESD clamp diodes and
//!   gate load; preset [`receiver::md4`] (1.8 V);
//! * [`extraction`] — DC sweeps and switching-waveform capture used both by
//!   the IBIS builder and by the macromodel identification pipeline;
//! * [`ibis`] — an IBIS 2.1-style behavioral model (I–V tables + switching
//!   coefficients from two V–T waveforms) with slow/typical/fast corners,
//!   implementable as a [`circuit::Device`]. This is the baseline the paper
//!   compares against in Fig. 1.

#![forbid(unsafe_code)]

pub mod drivers;
pub mod extraction;
pub mod ibis;
pub mod receiver;

pub use drivers::{md1, md2, md3, CmosDriverSpec, DriverPorts};
pub use ibis::{IbisCorner, IbisDriver, IbisModel};
pub use receiver::{md4, ReceiverPorts, ReceiverSpec};

/// Errors produced by reference-device construction and extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A spec parameter is out of range.
    InvalidSpec {
        /// Description of the violated constraint.
        message: String,
    },
    /// An extraction request is structurally invalid (e.g. a sweep with
    /// fewer than two points).
    InvalidStructure {
        /// Description of the violated constraint.
        message: String,
    },
    /// An underlying circuit analysis failed.
    Circuit(circuit::Error),
    /// A numerical routine failed during extraction.
    Numeric(numkit::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidSpec { message } => write!(f, "invalid device spec: {message}"),
            Error::InvalidStructure { message } => {
                write!(f, "invalid extraction request: {message}")
            }
            Error::Circuit(e) => write!(f, "circuit analysis failed: {e}"),
            Error::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Circuit(e) => Some(e),
            Error::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<circuit::Error> for Error {
    fn from(e: circuit::Error) -> Self {
        Error::Circuit(e)
    }
}

impl From<numkit::Error> for Error {
    fn from(e: numkit::Error) -> Self {
        Error::Numeric(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_sources() {
        use std::error::Error as _;
        let e = Error::InvalidSpec {
            message: "bad".into(),
        };
        assert!(e.to_string().contains("bad"));
        assert!(e.source().is_none());
        let e: Error = circuit::Error::InvalidAnalysis {
            message: "x".into(),
        }
        .into();
        assert!(e.source().is_some());
        let e: Error = numkit::Error::EmptyInput.into();
        assert!(e.to_string().contains("numeric"));
    }
}
