//! Transistor-level receiver (input port) reference device.
//!
//! Receivers present a mostly capacitive load inside the supply range and a
//! strongly nonlinear one outside it, where the ESD protection network
//! conducts — exactly the structure the paper's equation (2) exploits.

use crate::{Error, Result};
use circuit::devices::{Capacitor, Diode, DiodeParams, Resistor, SourceWaveform, VoltageSource};
use circuit::{Circuit, DeviceId, Node, GROUND};

/// Specification of a reference receiver.
#[derive(Debug, Clone)]
pub struct ReceiverSpec {
    /// Human-readable device name.
    pub name: &'static str,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Pad capacitance (F).
    pub c_pad: f64,
    /// Series resistance from pad to the gate of the input stage (Ω).
    pub r_series: f64,
    /// Input-stage gate capacitance (F).
    pub c_gate: f64,
    /// Up (pad → VDD) protection diode parameters.
    pub d_up: DiodeParams,
    /// Down (GND → pad) protection diode parameters.
    pub d_down: DiodeParams,
    /// Series resistance of each protection branch (Ω).
    pub r_esd: f64,
    /// Small leakage resistance from pad to ground (Ω).
    pub r_leak: f64,
}

/// Nodes of an instantiated receiver.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverPorts {
    /// Supply node.
    pub vdd: Node,
    /// Input pad node — connect the interconnect here.
    pub pad: Node,
    /// Probe whose branch 0 carries the current flowing *into* the pad.
    pub probe: DeviceId,
}

impl ReceiverSpec {
    fn validate(&self) -> Result<()> {
        if self.vdd <= 0.0 {
            return Err(Error::InvalidSpec {
                message: format!("vdd must be positive, got {}", self.vdd),
            });
        }
        if self.c_pad <= 0.0 || self.c_gate <= 0.0 || self.r_series <= 0.0 || self.r_leak <= 0.0 {
            return Err(Error::InvalidSpec {
                message: "capacitances and resistances must be positive".into(),
            });
        }
        Ok(())
    }

    /// Instantiates the receiver into `ckt`. The external circuit connects
    /// to `ReceiverPorts::pad`; the probe measures the current entering the
    /// device.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for inconsistent specs.
    pub fn instantiate(&self, ckt: &mut Circuit) -> Result<ReceiverPorts> {
        self.validate()?;
        let nm = self.name;
        let vdd = ckt.node(format!("{nm}_vdd"));
        ckt.add(VoltageSource::new(
            format!("{nm}_vdd_src"),
            vdd,
            GROUND,
            SourceWaveform::dc(self.vdd),
        ));
        let pad = ckt.node(format!("{nm}_pad"));
        let pad_int = ckt.node(format!("{nm}_pad_i"));
        // Probe in series: current from pad (external) into the device.
        let probe = ckt.add(VoltageSource::probe(format!("{nm}_iprobe"), pad, pad_int));

        ckt.add(Capacitor::new(
            format!("{nm}_cpad"),
            pad_int,
            GROUND,
            self.c_pad,
        ));
        let n_up = ckt.node(format!("{nm}_esd_up"));
        ckt.add(Diode::new(format!("{nm}_dup"), pad_int, n_up, self.d_up));
        ckt.add(Resistor::new(
            format!("{nm}_resd_up"),
            n_up,
            vdd,
            self.r_esd.max(0.1),
        ));
        let n_dn = ckt.node(format!("{nm}_esd_dn"));
        ckt.add(Diode::new(format!("{nm}_ddn"), n_dn, pad_int, self.d_down));
        ckt.add(Resistor::new(
            format!("{nm}_resd_dn"),
            GROUND,
            n_dn,
            self.r_esd.max(0.1),
        ));
        ckt.add(Resistor::new(
            format!("{nm}_rleak"),
            pad_int,
            GROUND,
            self.r_leak,
        ));
        let gate = ckt.node(format!("{nm}_gate"));
        ckt.add(Resistor::new(
            format!("{nm}_rs"),
            pad_int,
            gate,
            self.r_series,
        ));
        ckt.add(Capacitor::new(
            format!("{nm}_cg"),
            gate,
            GROUND,
            self.c_gate,
        ));

        Ok(ReceiverPorts { vdd, pad, probe })
    }

    /// Total low-frequency input capacitance (pad + gate).
    pub fn total_capacitance(&self) -> f64 {
        self.c_pad + self.c_gate
    }
}

/// MD4: a 1.8 V receiver of the same product family as [`crate::md2`] /
/// [`crate::md3`].
pub fn md4() -> ReceiverSpec {
    ReceiverSpec {
        name: "md4",
        vdd: 1.8,
        c_pad: 1.4e-12,
        r_series: 350.0,
        c_gate: 2.2e-12,
        d_up: DiodeParams::esd_clamp(),
        d_down: DiodeParams::esd_clamp(),
        r_esd: 4.0,
        r_leak: 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::TranParams;

    #[test]
    fn preset_validates() {
        assert!(md4().validate().is_ok());
        assert!((md4().total_capacitance() - 3.6e-12).abs() < 1e-15);
    }

    #[test]
    fn invalid_spec_rejected() {
        let mut s = md4();
        s.c_pad = 0.0;
        assert!(s.validate().is_err());
        let mut s = md4();
        s.vdd = -1.0;
        assert!(s.validate().is_err());
    }

    /// Inside the rails the receiver draws (almost) no DC current.
    #[test]
    fn high_impedance_inside_rails() {
        let spec = md4();
        let mut ckt = Circuit::new();
        let ports = spec.instantiate(&mut ckt).unwrap();
        ckt.add(VoltageSource::new(
            "vext",
            ports.pad,
            GROUND,
            SourceWaveform::dc(0.9),
        ));
        let res = ckt.transient(TranParams::new(1e-10, 1e-8)).unwrap();
        let i = res.branch_current(&ckt, ports.probe, 0);
        let i_end = *i.values().last().unwrap();
        assert!(i_end.abs() < 5e-6, "leakage-only current, got {i_end}");
    }

    /// Above VDD the up-protection conducts strongly.
    #[test]
    fn protection_conducts_above_vdd() {
        let spec = md4();
        let mut ckt = Circuit::new();
        let ports = spec.instantiate(&mut ckt).unwrap();
        let next = ckt.node("ext");
        ckt.add(Resistor::new("rext", next, ports.pad, 50.0));
        ckt.add(VoltageSource::new(
            "vext",
            next,
            GROUND,
            SourceWaveform::dc(spec.vdd + 1.2),
        ));
        let res = ckt.transient(TranParams::new(1e-10, 1e-8)).unwrap();
        let i = res.branch_current(&ckt, ports.probe, 0);
        let i_end = *i.values().last().unwrap();
        assert!(i_end > 1e-3, "clamp should conduct mA, got {i_end}");
    }

    /// The transient charging current integrates to C * dV.
    #[test]
    fn capacitive_charge_balance() {
        let spec = md4();
        let mut ckt = Circuit::new();
        let ports = spec.instantiate(&mut ckt).unwrap();
        let next = ckt.node("ext");
        ckt.add(Resistor::new("rext", next, ports.pad, 100.0));
        ckt.add(VoltageSource::new(
            "vext",
            next,
            GROUND,
            SourceWaveform::step(0.0, 1.0, 100e-12),
        ));
        let res = ckt.transient(TranParams::new(5e-12, 5e-9)).unwrap();
        let i = res.branch_current(&ckt, ports.probe, 0);
        // Trapezoidal integral of the current.
        let t = i.times();
        let y = i.values();
        let mut q = 0.0;
        for k in 1..t.len() {
            q += 0.5 * (y[k] + y[k - 1]) * (t[k] - t[k - 1]);
        }
        let expect = spec.total_capacitance() * 1.0;
        assert!(
            (q - expect).abs() < 0.15 * expect,
            "charge {q:.3e} vs C*dV {expect:.3e}"
        );
    }
}
