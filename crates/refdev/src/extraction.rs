//! Waveform and I–V extraction harnesses.
//!
//! These helpers run the transistor-level reference devices through the
//! circuit simulator to produce the raw data consumed by both the IBIS
//! builder and the macromodel identification pipeline:
//!
//! * [`driver_output_iv`] — static output I–V curves with the device held in
//!   a logic state (IBIS pullup/pulldown tables, PW-RBF static references);
//! * [`capture_driver`] — transient port voltage/current waveforms while the
//!   driver runs an arbitrary stimulus into an arbitrary load;
//! * [`capture_receiver`] — transient pad waveforms of a receiver excited by
//!   an arbitrary source network.

use crate::drivers::CmosDriverSpec;
use crate::receiver::ReceiverSpec;
use crate::{Error, Result};
use circuit::devices::{SourceWaveform, VoltageSource};
use circuit::{Circuit, DeviceId, Node, TranParams, Waveform, GROUND};

/// A static port sweep: current delivered by the device versus port voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct PortSweep {
    /// Port voltages (V), strictly increasing.
    pub voltages: Vec<f64>,
    /// Current delivered by the device into the external source (A).
    pub currents: Vec<f64>,
}

/// A reusable DC sweep harness: the circuit is built *once*, the external
/// source value is updated in place between points, and every solve is
/// warm-started from the previous point's solution (voltage continuation).
///
/// Together with the solver workspace this makes an `n`-point sweep cost one
/// symbolic analysis plus `n` short warm Newton runs, instead of `n` full
/// circuit builds and cold solves.
struct DcSweep {
    ckt: Circuit,
    ws: circuit::StampWorkspace,
    source: DeviceId,
    probe_index: usize,
    x_prev: Option<Vec<f64>>,
}

impl DcSweep {
    /// Builds the harness around a circuit that already contains the device
    /// under test; `source` is the external pad source to sweep and
    /// `probe_index` the unknown holding the measured current.
    fn new(mut ckt: Circuit, source: DeviceId, probe_index: usize) -> Self {
        let ws = ckt.make_workspace();
        DcSweep {
            ckt,
            ws,
            source,
            probe_index,
            x_prev: None,
        }
    }

    /// Solves one sweep point and returns the probed current.
    fn solve_at(&mut self, v: f64) -> Result<f64> {
        self.ckt
            .device_mut::<VoltageSource>(self.source)
            .expect("sweep source is a voltage source")
            .set_waveform(SourceWaveform::dc(v));
        let x = self
            .ckt
            .dc_operating_point_ws(&mut self.ws, self.x_prev.as_deref())?;
        let i = x[self.probe_index];
        self.x_prev = Some(x);
        Ok(i)
    }
}

/// Validates a sweep grid and returns the voltage at point `k`.
fn sweep_grid(v_range: (f64, f64), n_points: usize) -> Result<impl Iterator<Item = f64>> {
    if n_points < 2 {
        return Err(Error::InvalidStructure {
            message: format!("a sweep needs at least 2 points, got {n_points}"),
        });
    }
    let (v0, v1) = v_range;
    let step = (v1 - v0) / (n_points - 1) as f64;
    Ok((0..n_points).map(move |k| v0 + step * k as f64))
}

/// Sweeps the driver output statically with the core input held at a logic
/// level. Returns the current *delivered by the driver* at each voltage.
///
/// This reproduces the IBIS pullup (logic high) / pulldown (logic low)
/// table extraction; ESD clamp currents are included in the curves, as is
/// conventional for non-tristate outputs.
///
/// # Errors
///
/// * [`Error::InvalidStructure`] for sweeps with fewer than two points.
/// * Propagates spec validation and DC-solve failures.
pub fn driver_output_iv(
    spec: &CmosDriverSpec,
    logic_high: bool,
    v_range: (f64, f64),
    n_points: usize,
) -> Result<PortSweep> {
    let grid = sweep_grid(v_range, n_points)?;
    let input = if logic_high { spec.vdd } else { 0.0 };
    let mut ckt = Circuit::new();
    let ports = spec.instantiate(&mut ckt, SourceWaveform::dc(input))?;
    let source = ckt.add(VoltageSource::new(
        "v_ext",
        ports.pad,
        GROUND,
        SourceWaveform::dc(v_range.0),
    ));
    let probe_index = ckt.branch_index(ports.probe, 0);
    let mut sweep = DcSweep::new(ckt, source, probe_index);

    let mut voltages = Vec::with_capacity(n_points);
    let mut currents = Vec::with_capacity(n_points);
    for v in grid {
        voltages.push(v);
        currents.push(sweep.solve_at(v)?);
    }
    Ok(PortSweep { voltages, currents })
}

/// Sweeps a receiver pad statically. Returns the current flowing *into* the
/// receiver at each voltage (protection-circuit characteristic).
///
/// # Errors
///
/// * [`Error::InvalidStructure`] for sweeps with fewer than two points.
/// * Propagates spec validation and DC-solve failures.
pub fn receiver_input_iv(
    spec: &ReceiverSpec,
    v_range: (f64, f64),
    n_points: usize,
) -> Result<PortSweep> {
    let grid = sweep_grid(v_range, n_points)?;
    let mut ckt = Circuit::new();
    let ports = spec.instantiate(&mut ckt)?;
    let source = ckt.add(VoltageSource::new(
        "v_ext",
        ports.pad,
        GROUND,
        SourceWaveform::dc(v_range.0),
    ));
    let probe_index = ckt.branch_index(ports.probe, 0);
    let mut sweep = DcSweep::new(ckt, source, probe_index);

    let mut voltages = Vec::with_capacity(n_points);
    let mut currents = Vec::with_capacity(n_points);
    for v in grid {
        voltages.push(v);
        currents.push(sweep.solve_at(v)?);
    }
    Ok(PortSweep { voltages, currents })
}

/// Captured transient port signals.
#[derive(Debug, Clone)]
pub struct PortCapture {
    /// Pad voltage (V).
    pub voltage: Waveform,
    /// Current delivered by the device into the external circuit (A).
    /// For receivers this is the current flowing *into* the pad.
    pub current: Waveform,
}

/// Runs the driver with stimulus `input` into a load built by `load`, which
/// receives the circuit and the pad node. Returns the pad voltage and the
/// delivered current sampled on the fixed grid `dt` up to `t_stop`.
///
/// # Errors
///
/// Propagates construction and transient failures.
pub fn capture_driver(
    spec: &CmosDriverSpec,
    input: SourceWaveform,
    load: impl FnOnce(&mut Circuit, Node) -> Result<()>,
    dt: f64,
    t_stop: f64,
) -> Result<PortCapture> {
    let mut ckt = Circuit::new();
    let ports = spec.instantiate(&mut ckt, input)?;
    load(&mut ckt, ports.pad)?;
    let res = ckt.transient(TranParams::new(dt, t_stop))?;
    Ok(PortCapture {
        voltage: res.voltage(ports.pad),
        current: res.branch_current(&ckt, ports.probe, 0),
    })
}

/// Runs a receiver excited by a source network built by `source`, which
/// receives the circuit and the pad node. Returns pad voltage and the
/// current flowing into the receiver.
///
/// # Errors
///
/// Propagates construction and transient failures.
pub fn capture_receiver(
    spec: &ReceiverSpec,
    source: impl FnOnce(&mut Circuit, Node) -> Result<()>,
    dt: f64,
    t_stop: f64,
) -> Result<PortCapture> {
    let mut ckt = Circuit::new();
    let ports = spec.instantiate(&mut ckt)?;
    source(&mut ckt, ports.pad)?;
    let res = ckt.transient(TranParams::new(dt, t_stop))?;
    Ok(PortCapture {
        voltage: res.voltage(ports.pad),
        current: res.branch_current(&ckt, ports.probe, 0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::md1;
    use crate::receiver::md4;
    use circuit::devices::Resistor;

    #[test]
    fn degenerate_sweeps_rejected() {
        // n_points == 1 used to silently sample only v_range.0 and
        // n_points == 0 returned empty sweeps; both are now structural
        // errors.
        for n in [0, 1] {
            assert!(matches!(
                driver_output_iv(&md1(), false, (0.0, 3.3), n),
                Err(crate::Error::InvalidStructure { .. })
            ));
            assert!(matches!(
                receiver_input_iv(&md4(), (-1.0, 3.0), n),
                Err(crate::Error::InvalidStructure { .. })
            ));
        }
    }

    #[test]
    fn warm_started_sweep_matches_cold_solves() {
        // The continuation path must agree with independent cold solves.
        let spec = md1();
        let sweep = driver_output_iv(&spec, true, (-0.5, 3.8), 9).unwrap();
        for (k, (&v, &i)) in sweep.voltages.iter().zip(&sweep.currents).enumerate() {
            let mut ckt = Circuit::new();
            let ports = spec
                .instantiate(&mut ckt, SourceWaveform::dc(spec.vdd))
                .unwrap();
            ckt.add(VoltageSource::new(
                "v_ext",
                ports.pad,
                GROUND,
                SourceWaveform::dc(v),
            ));
            let x = ckt.dc_operating_point().unwrap();
            let i_cold = x[ckt.branch_index(ports.probe, 0)];
            assert!(
                (i - i_cold).abs() < 1e-6 * (1.0 + i_cold.abs()),
                "point {k} at {v} V: warm {i} vs cold {i_cold}"
            );
        }
    }

    #[test]
    fn pulldown_curve_shape() {
        let sweep = driver_output_iv(&md1(), false, (0.0, 3.3), 12).unwrap();
        assert_eq!(sweep.voltages.len(), 12);
        // Logic low, v = 0: no current. v > 0: the NMOS sinks (delivered
        // current negative).
        assert!(sweep.currents[0].abs() < 1e-4);
        assert!(
            sweep.currents[6] < -5e-3,
            "sink current {}",
            sweep.currents[6]
        );
        // Monotone decreasing over the main range.
        for w in sweep.currents.windows(2).take(8) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn pullup_curve_shape() {
        let sweep = driver_output_iv(&md1(), true, (0.0, 3.3), 12).unwrap();
        // v = 0: strong source current; v = vdd: none.
        assert!(sweep.currents[0] > 10e-3);
        assert!(sweep.currents[11].abs() < 1e-3);
    }

    #[test]
    fn receiver_iv_clamps() {
        let sweep = receiver_input_iv(&md4(), (-1.0, 3.0), 9).unwrap();
        // Below ground the down clamp sources current out of the pad
        // (negative into-device current), above vdd the up clamp sinks.
        assert!(
            sweep.currents[0] < -1e-4,
            "down clamp {}",
            sweep.currents[0]
        );
        assert!(
            *sweep.currents.last().unwrap() > 1e-4,
            "up clamp {}",
            sweep.currents.last().unwrap()
        );
        // Near mid-rail: leakage only.
        assert!(sweep.currents[4].abs() < 1e-5);
    }

    #[test]
    fn capture_driver_runs() {
        let spec = md1();
        let cap = capture_driver(
            &spec,
            spec.pattern("01", 4e-9),
            |ckt, pad| {
                ckt.add(Resistor::new("rload", pad, GROUND, 50.0));
                Ok(())
            },
            25e-12,
            8e-9,
        )
        .unwrap();
        assert_eq!(cap.voltage.len(), cap.current.len());
        // Ohm's law at the load holds sample by sample.
        for (v, i) in cap
            .voltage
            .values()
            .iter()
            .zip(cap.current.values())
            .skip(10)
        {
            assert!((v / 50.0 - i).abs() < 1e-6);
        }
    }

    #[test]
    fn capture_receiver_runs() {
        let spec = md4();
        let cap = capture_receiver(
            &spec,
            |ckt, pad| {
                let src = ckt.node("src");
                ckt.add(VoltageSource::new(
                    "vs",
                    src,
                    GROUND,
                    SourceWaveform::step(0.0, 1.5, 200e-12),
                ));
                ckt.add(Resistor::new("rs", src, pad, 60.0));
                Ok(())
            },
            10e-12,
            3e-9,
        )
        .unwrap();
        // Charging current spike during the edge.
        let peak = cap
            .current
            .values()
            .iter()
            .fold(0.0_f64, |m, &v| m.max(v.abs()));
        assert!(peak > 1e-3, "peak charging current {peak}");
    }
}
