//! Transistor-level CMOS output-buffer reference devices.
//!
//! Each driver is a tapered chain of CMOS inverters feeding a wide final
//! stage, with ESD clamp diodes and package parasitics at the pad:
//!
//! ```text
//!  in ──▷ inv1 ──▷ inv2 ──▷ final stage ──R_pkg──L_pkg──● pad
//!                                 │                     │
//!                             C_drain              C_pad, clamps
//! ```
//!
//! The pre-driver chain reshapes the (idealized) core signal so the pad edge
//! rate is set by the device, not by the stimulus — the property that makes
//! driver macromodeling nontrivial.

use crate::{Error, Result};
use circuit::devices::{
    Capacitor, Diode, DiodeParams, Inductor, MosPolarity, Mosfet, MosfetParams, Resistor,
    SourceWaveform, VoltageSource,
};
use circuit::{Circuit, DeviceId, Node, GROUND};

/// Complete specification of a reference CMOS driver.
#[derive(Debug, Clone)]
pub struct CmosDriverSpec {
    /// Human-readable device name (used in labels).
    pub name: &'static str,
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS process parameters of a unit (W/L = 1) device.
    pub nmos_unit: MosfetParams,
    /// PMOS process parameters of a unit device.
    pub pmos_unit: MosfetParams,
    /// W/L of the final-stage NMOS.
    pub wl_final_n: f64,
    /// W/L ratio of PMOS to NMOS (mobility compensation).
    pub p_over_n: f64,
    /// Taper factor between pre-driver stages.
    pub taper: f64,
    /// Number of pre-driver stages (≥ 1; parity is adjusted internally so
    /// the pad is non-inverting with respect to the logic input).
    pub stages: usize,
    /// Gate capacitance per unit W/L (F).
    pub c_gate_unit: f64,
    /// Drain junction capacitance per unit W/L of the final stage (F).
    pub c_drain_unit: f64,
    /// Package series resistance (Ω).
    pub r_pkg: f64,
    /// Package series inductance (H).
    pub l_pkg: f64,
    /// Pad capacitance (F).
    pub c_pad: f64,
    /// Series resistance of each ESD clamp branch (Ω).
    pub r_esd: f64,
    /// Input edge time of the idealized core signal (s).
    pub t_edge_core: f64,
}

/// Nodes of an instantiated driver.
#[derive(Debug, Clone, Copy)]
pub struct DriverPorts {
    /// Supply node (driven by an internal ideal source).
    pub vdd: Node,
    /// Output pad node — connect the load here.
    pub pad: Node,
    /// Handle of the series probe source; branch 0 carries the current
    /// delivered by the driver into the external circuit.
    pub probe: DeviceId,
}

impl CmosDriverSpec {
    fn validate(&self) -> Result<()> {
        if self.vdd <= 0.0 {
            return Err(Error::InvalidSpec {
                message: format!("vdd must be positive, got {}", self.vdd),
            });
        }
        if self.stages == 0 {
            return Err(Error::InvalidSpec {
                message: "at least one pre-driver stage is required".into(),
            });
        }
        if self.wl_final_n <= 0.0 || self.p_over_n <= 0.0 || self.taper <= 0.0 {
            return Err(Error::InvalidSpec {
                message: "sizing factors must be positive".into(),
            });
        }
        Ok(())
    }

    /// Effective output resistance scale of the final stage (used to pick
    /// sensible identification loads): `1 / (beta_n (vdd - vt))`.
    pub fn nominal_output_resistance(&self) -> f64 {
        let beta = self.nmos_unit.beta() * self.wl_final_n;
        1.0 / (beta * (self.vdd - self.nmos_unit.vt0).max(0.1))
    }

    /// Instantiates the driver into `ckt`, driving the logic input with
    /// `input`. Returns the port nodes.
    ///
    /// The input waveform uses logic levels `0..vdd` (use
    /// [`SourceWaveform::bit_pattern`] with `low = 0`, `high = vdd`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for inconsistent specs.
    pub fn instantiate(&self, ckt: &mut Circuit, input: SourceWaveform) -> Result<DriverPorts> {
        self.validate()?;
        let nm = self.name;
        let vdd = ckt.node(format!("{nm}_vdd"));
        ckt.add(VoltageSource::new(
            format!("{nm}_vdd_src"),
            vdd,
            GROUND,
            SourceWaveform::dc(self.vdd),
        ));

        let n_in = ckt.node(format!("{nm}_core_in"));
        ckt.add(VoltageSource::new(
            format!("{nm}_core"),
            n_in,
            GROUND,
            input,
        ));

        // Pre-driver chain. An even total inversion count keeps the pad
        // non-inverting: chain stages + final stage must be even.
        let mut stages = self.stages;
        if !(stages + 1).is_multiple_of(2) {
            stages += 1;
        }
        // Smallest stage W/L so that the chain tapers up to the final stage.
        let wl_first = (self.wl_final_n / self.taper.powi(stages as i32)).max(1.0);

        let mut prev = n_in;
        for s in 0..stages {
            let wl_n = wl_first * self.taper.powi(s as i32);
            let out = ckt.node(format!("{nm}_st{s}"));
            self.add_inverter(ckt, &format!("{nm}_inv{s}"), prev, out, vdd, wl_n)?;
            prev = out;
        }

        // Final stage.
        let drain = ckt.node(format!("{nm}_drain"));
        self.add_inverter(ckt, &format!("{nm}_fin"), prev, drain, vdd, self.wl_final_n)?;
        ckt.add(Capacitor::new(
            format!("{nm}_cdb"),
            drain,
            GROUND,
            (self.c_drain_unit * self.wl_final_n).max(1e-16),
        ));

        // Package and pad.
        let mid = ckt.node(format!("{nm}_pkg"));
        ckt.add(Resistor::new(
            format!("{nm}_rpkg"),
            drain,
            mid,
            self.r_pkg.max(1e-3),
        ));
        let pad_int = ckt.node(format!("{nm}_pad_i"));
        ckt.add(Inductor::new(
            format!("{nm}_lpkg"),
            mid,
            pad_int,
            self.l_pkg.max(1e-13),
        ));
        ckt.add(Capacitor::new(
            format!("{nm}_cpad"),
            pad_int,
            GROUND,
            self.c_pad.max(1e-16),
        ));
        // ESD clamps: pad above VDD or below GND turns a diode on. Each
        // branch carries a series resistance that bounds the clamp current.
        let n_esd_hi = ckt.node(format!("{nm}_esd_hi"));
        ckt.add(Diode::new(
            format!("{nm}_dclamp_hi"),
            pad_int,
            n_esd_hi,
            DiodeParams::esd_clamp(),
        ));
        ckt.add(Resistor::new(
            format!("{nm}_resd_hi"),
            n_esd_hi,
            vdd,
            self.r_esd.max(0.1),
        ));
        let n_esd_lo = ckt.node(format!("{nm}_esd_lo"));
        ckt.add(Diode::new(
            format!("{nm}_dclamp_lo"),
            n_esd_lo,
            pad_int,
            DiodeParams::esd_clamp(),
        ));
        ckt.add(Resistor::new(
            format!("{nm}_resd_lo"),
            GROUND,
            n_esd_lo,
            self.r_esd.max(0.1),
        ));

        // Series probe: branch current = current delivered into the load.
        let pad = ckt.node(format!("{nm}_pad"));
        let probe = ckt.add(VoltageSource::probe(format!("{nm}_iprobe"), pad_int, pad));

        Ok(DriverPorts { vdd, pad, probe })
    }

    fn add_inverter(
        &self,
        ckt: &mut Circuit,
        label: &str,
        input: Node,
        output: Node,
        vdd: Node,
        wl_n: f64,
    ) -> Result<()> {
        let wl_p = wl_n * self.p_over_n;
        let mut np = self.nmos_unit;
        np.w = self.nmos_unit.w * wl_n;
        let mut pp = self.pmos_unit;
        pp.w = self.pmos_unit.w * wl_p;
        ckt.add(Mosfet::new(
            format!("{label}_n"),
            output,
            input,
            GROUND,
            MosPolarity::Nmos,
            np,
        ));
        ckt.add(Mosfet::new(
            format!("{label}_p"),
            output,
            input,
            vdd,
            MosPolarity::Pmos,
            pp,
        ));
        // Lumped gate capacitance at the input, output junction cap at out.
        ckt.add(Capacitor::new(
            format!("{label}_cg"),
            input,
            GROUND,
            (self.c_gate_unit * (wl_n + wl_p)).max(1e-17),
        ));
        ckt.add(Capacitor::new(
            format!("{label}_cj"),
            output,
            GROUND,
            (0.4 * self.c_gate_unit * (wl_n + wl_p)).max(1e-17),
        ));
        Ok(())
    }

    /// Convenience: the bit-pattern waveform for this driver's logic levels.
    pub fn pattern(&self, bits: &str, bit_time: f64) -> SourceWaveform {
        SourceWaveform::bit_pattern(bits, bit_time, self.t_edge_core, 0.0, self.vdd, 0.0)
    }
}

fn unit_mos(vt0: f64, kp: f64, _nmos: bool) -> MosfetParams {
    MosfetParams {
        vt0,
        kp,
        w: 1e-6,
        l: 1e-6,
        lambda: 0.05,
    }
}

/// MD1: a 3.3 V LVC-class octal-buffer output (74LVC244 stand-in).
///
/// Sized for roughly ±24 mA drive at the rails and ~1.5 ns pad edges.
pub fn md1() -> CmosDriverSpec {
    CmosDriverSpec {
        name: "md1",
        vdd: 3.3,
        nmos_unit: unit_mos(0.6, 150e-6, true),
        pmos_unit: unit_mos(-0.6, 65e-6, false),
        wl_final_n: 150.0,
        p_over_n: 2.5,
        taper: 3.0,
        stages: 2,
        c_gate_unit: 2e-15,
        c_drain_unit: 1.5e-15,
        r_pkg: 1.0,
        l_pkg: 2.5e-9,
        c_pad: 1.5e-12,
        r_esd: 4.0,
        t_edge_core: 300e-12,
    }
}

/// MD2: a 1.8 V high-speed CMOS driver (IBM mainframe class).
pub fn md2() -> CmosDriverSpec {
    CmosDriverSpec {
        name: "md2",
        vdd: 1.8,
        nmos_unit: unit_mos(0.42, 300e-6, true),
        pmos_unit: unit_mos(-0.42, 130e-6, false),
        wl_final_n: 200.0,
        p_over_n: 2.3,
        taper: 3.5,
        stages: 2,
        c_gate_unit: 1.2e-15,
        c_drain_unit: 1.0e-15,
        r_pkg: 0.6,
        l_pkg: 1.2e-9,
        c_pad: 1.0e-12,
        r_esd: 3.0,
        t_edge_core: 150e-12,
    }
}

/// MD3: a 1.5 V CMOS driver used on the coupled-MCM experiment.
pub fn md3() -> CmosDriverSpec {
    CmosDriverSpec {
        name: "md3",
        vdd: 1.5,
        nmos_unit: unit_mos(0.38, 320e-6, true),
        pmos_unit: unit_mos(-0.38, 140e-6, false),
        wl_final_n: 180.0,
        p_over_n: 2.3,
        taper: 3.0,
        stages: 2,
        c_gate_unit: 1.0e-15,
        c_drain_unit: 0.8e-15,
        r_pkg: 0.5,
        l_pkg: 1.0e-9,
        c_pad: 0.8e-12,
        r_esd: 3.0,
        t_edge_core: 120e-12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::TranParams;

    #[test]
    fn presets_validate() {
        for spec in [md1(), md2(), md3()] {
            assert!(spec.validate().is_ok(), "{} invalid", spec.name);
            assert!(spec.nominal_output_resistance() > 0.0);
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = md1();
        s.vdd = 0.0;
        assert!(s.validate().is_err());
        let mut s = md1();
        s.stages = 0;
        assert!(s.validate().is_err());
        let mut s = md1();
        s.taper = 0.0;
        assert!(s.validate().is_err());
    }

    /// Static levels: with the input held low/high the pad must sit at the
    /// rails (non-inverting buffer).
    #[test]
    fn static_levels_rail_to_rail() {
        for (input, expect) in [(0.0, 0.0), (3.3, 3.3)] {
            let spec = md1();
            let mut ckt = Circuit::new();
            let ports = spec
                .instantiate(&mut ckt, SourceWaveform::dc(input))
                .unwrap();
            // Light load keeps the pad from floating.
            ckt.add(Resistor::new("rload", ports.pad, GROUND, 1e6));
            let x = ckt.dc_operating_point().unwrap();
            let vpad = x[ports.pad.index() - 1];
            assert!(
                (vpad - expect).abs() < 0.05,
                "input {input}: pad at {vpad}, expected {expect}"
            );
        }
    }

    /// Dynamic switching into a resistive load: the pad must perform a
    /// full-swing transition with finite, device-limited edge time.
    #[test]
    fn switching_edge_is_device_limited() {
        let spec = md2();
        let mut ckt = Circuit::new();
        let ports = spec
            .instantiate(&mut ckt, spec.pattern("01", 3e-9))
            .unwrap();
        ckt.add(Resistor::new("rload", ports.pad, GROUND, 100.0));
        let res = ckt.transient(TranParams::new(10e-12, 6e-9)).unwrap();
        let v = res.voltage(ports.pad);
        // Starts low, ends high.
        assert!(v.sample_at(2.5e-9) < 0.2);
        assert!(v.sample_at(5.8e-9) > 0.9 * 1.8 * 100.0 / 100.6 - 0.1);
        // 20–80% rise time within a plausible device range (not the 150 ps
        // core edge, not slower than 2 ns).
        let lo = v.threshold_crossings(0.2 * 1.8);
        let hi = v.threshold_crossings(0.8 * 1.8);
        assert!(!lo.is_empty() && !hi.is_empty());
        let tr = hi[0].time - lo[0].time;
        assert!(tr > 30e-12 && tr < 2e-9, "rise time {tr:.3e}");
    }

    /// The current probe measures the load current.
    #[test]
    fn probe_reads_load_current() {
        let spec = md1();
        let mut ckt = Circuit::new();
        let ports = spec.instantiate(&mut ckt, SourceWaveform::dc(3.3)).unwrap();
        ckt.add(Resistor::new("rload", ports.pad, GROUND, 330.0));
        let res = ckt.transient(TranParams::new(50e-12, 3e-9)).unwrap();
        let i = res.branch_current(&ckt, ports.probe, 0);
        let v = res.voltage(ports.pad);
        let i_end = *i.values().last().unwrap();
        let v_end = *v.values().last().unwrap();
        assert!(
            (i_end - v_end / 330.0).abs() < 1e-4,
            "probe {i_end} vs v/R {}",
            v_end / 330.0
        );
        assert!(i_end > 5e-3, "driver should source several mA, got {i_end}");
    }

    /// ESD clamps engage when the pad is driven beyond the rails.
    #[test]
    fn clamps_conduct_beyond_rails() {
        let spec = md3();
        let mut ckt = Circuit::new();
        let ports = spec.instantiate(&mut ckt, SourceWaveform::dc(0.0)).unwrap();
        let next = ckt.node("ext");
        ckt.add(Resistor::new("rext", ports.pad, next, 10.0));
        ckt.add(VoltageSource::new(
            "vext",
            next,
            GROUND,
            SourceWaveform::dc(spec.vdd + 1.0),
        ));
        let x = ckt.dc_operating_point().unwrap();
        let vpad = x[ports.pad.index() - 1];
        // Clamp holds the pad within a diode drop of the rail even though
        // the external source pulls a volt higher.
        assert!(
            vpad < spec.vdd + 0.95,
            "pad {vpad} should be clamped near vdd {}",
            spec.vdd
        );
    }
}
