//! Family-wide invariants of the reference devices: every driver preset
//! must satisfy the structural properties the identification pipeline
//! relies on.

use circuit::devices::{Resistor, SourceWaveform};
use circuit::{Circuit, TranParams, GROUND};
use refdev::extraction::driver_output_iv;
use refdev::{md1, md2, md3, CmosDriverSpec};

fn all_drivers() -> Vec<CmosDriverSpec> {
    vec![md1(), md2(), md3()]
}

/// Static logic levels: pads reach the rails into a light load.
#[test]
fn all_drivers_reach_rails() {
    for spec in all_drivers() {
        for (input, expect) in [(0.0, 0.0), (spec.vdd, spec.vdd)] {
            let mut ckt = Circuit::new();
            let ports = spec
                .instantiate(&mut ckt, SourceWaveform::dc(input))
                .expect("instantiate");
            ckt.add(Resistor::new("rl", ports.pad, GROUND, 1e6));
            let x = ckt.dc_operating_point().expect("dc");
            let v = x[ports.pad.index() - 1];
            assert!(
                (v - expect).abs() < 0.05,
                "{}: input {input} gives pad {v}, expected {expect}",
                spec.name
            );
        }
    }
}

/// Pulldown I–V curves are monotone non-increasing inside the rails for
/// every driver — the property that makes the PW-RBF submodels well posed.
#[test]
fn all_drivers_monotone_pulldown() {
    for spec in all_drivers() {
        let sweep = driver_output_iv(&spec, false, (0.0, spec.vdd), 15).expect("sweep");
        for w in sweep.currents.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6,
                "{}: pulldown curve not monotone",
                spec.name
            );
        }
        // Sinks at least a few mA mid-rail (drive strength).
        assert!(
            sweep.currents[7] < -3e-3,
            "{}: weak pulldown {}",
            spec.name,
            sweep.currents[7]
        );
    }
}

/// Pullup curves source current below VDD and roll off to zero at the rail.
#[test]
fn all_drivers_pullup_shape() {
    for spec in all_drivers() {
        let sweep = driver_output_iv(&spec, true, (0.0, spec.vdd), 15).expect("sweep");
        assert!(
            sweep.currents[0] > 5e-3,
            "{}: weak pullup {}",
            spec.name,
            sweep.currents[0]
        );
        assert!(
            sweep.currents[14].abs() < 2e-3,
            "{}: pullup should vanish at vdd, got {}",
            spec.name,
            sweep.currents[14]
        );
    }
}

/// Full-swing switching into a line-like resistive load with plausible,
/// device-limited edges for each family member.
#[test]
fn all_drivers_switch_cleanly() {
    for spec in all_drivers() {
        let mut ckt = Circuit::new();
        let ports = spec
            .instantiate(&mut ckt, spec.pattern("010", 3e-9))
            .expect("instantiate");
        ckt.add(Resistor::new("rl", ports.pad, GROUND, 75.0));
        let res = ckt.transient(TranParams::new(10e-12, 9e-9)).expect("tran");
        let v = res.voltage(ports.pad);
        let v_high = v.sample_at(5.8e-9);
        // Divider against the output impedance: at least 70 % of VDD.
        assert!(
            v_high > 0.7 * spec.vdd,
            "{}: high level {v_high} of vdd {}",
            spec.name,
            spec.vdd
        );
        let v_low = v.sample_at(8.8e-9);
        assert!(v_low < 0.1 * spec.vdd, "{}: low level {v_low}", spec.name);
        // Edge exists and is resolved by the 10 ps grid.
        let cr = v.threshold_crossings(0.5 * v_high);
        assert!(cr.len() >= 2, "{}: expected two edges", spec.name);
    }
}

/// Supply current is drawn from the internal VDD source, not conjured at
/// the pad: KCL sanity through the probe under static high drive.
#[test]
fn probe_matches_external_current() {
    for spec in all_drivers() {
        let mut ckt = Circuit::new();
        let ports = spec
            .instantiate(&mut ckt, SourceWaveform::dc(spec.vdd))
            .expect("instantiate");
        let rl = 200.0;
        ckt.add(Resistor::new("rl", ports.pad, GROUND, rl));
        let res = ckt.transient(TranParams::new(50e-12, 4e-9)).expect("tran");
        let i_probe = *res
            .branch_current(&ckt, ports.probe, 0)
            .values()
            .last()
            .unwrap();
        let v_pad = *res.voltage(ports.pad).values().last().unwrap();
        assert!(
            (i_probe - v_pad / rl).abs() < 1e-5,
            "{}: probe {i_probe} vs pad/R {}",
            spec.name,
            v_pad / rl
        );
    }
}
