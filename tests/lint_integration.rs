//! End-to-end static analysis: freshly extracted macromodels lint clean
//! through artifact round-trips, seeded-defect artifacts that *pass* the
//! exchange loader's validation still trip exactly their documented lint
//! code, and a structurally broken circuit is caught by the C-series audit.

use circuit::devices::Resistor;
use circuit::mna::EvalCtx;
use circuit::{Circuit, Device, Node, PatternBuilder, StampWorkspace, GROUND};
use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::{load_artifact_from_path, save_artifact_to_path, AnyModel, Artifact};
use macromodel::pipeline::DriverEstimationConfig;
use macromodel::receiver::ReceiverModel;
use macromodel::{lint_artifact, ExtractionSession, Severity};
use numkit::interp::Pwl;
use refdev::IbisModel;
use std::path::{Path, PathBuf};
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders, RbfTrainConfig};
use sysid::rbf::RbfNetwork;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lint_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Saves, reloads, and lints an artifact — the exact pipeline `mdl lint`
/// runs on a file.
fn roundtrip_codes(path: &Path, artifact: &Artifact) -> Vec<String> {
    save_artifact_to_path(artifact, path).unwrap();
    let loaded = load_artifact_from_path(path).unwrap();
    lint_artifact(&loaded)
        .diagnostics
        .into_iter()
        .map(|d| d.code.to_string())
        .collect()
}

#[test]
fn extracted_models_lint_clean_after_roundtrip() {
    let dir = scratch_dir("clean");

    let cfg = DriverEstimationConfig {
        n_levels: 24,
        dwell: 16,
        rbf: RbfTrainConfig {
            max_centers: 8,
            candidate_pool: 60,
            width_scale: 1.0,
            ols_tolerance: 1e-6,
        },
        t_pre: 1.5e-9,
        t_window: 3e-9,
        ..Default::default()
    };
    let mut driver = ExtractionSession::for_driver(refdev::md1()).config(cfg);
    let est = driver.run().unwrap();
    est.save(dir.join("drv.mdlx")).unwrap();

    let mut receiver = ExtractionSession::for_receiver(refdev::md4())
        .orders(3, 2, 3)
        .excitation(24, 16, 6);
    receiver
        .run()
        .unwrap()
        .save_v2(dir.join("rx.mdlx"))
        .unwrap();

    for file in ["drv.mdlx", "rx.mdlx"] {
        let artifact = load_artifact_from_path(dir.join(file)).unwrap();
        let report = lint_artifact(&artifact);
        assert!(
            report.diagnostics.is_empty(),
            "{file} should lint clean, got {:?}",
            report.diagnostics
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn stable_narx() -> NarxModel {
    NarxModel::from_network(
        NarxOrders::dynamic(1),
        RbfNetwork::affine(0.0, vec![0.01, 0.0, 0.2]),
    )
    .unwrap()
}

/// A receiver whose ARX pole sits exactly on the unit circle: spectral
/// radius 1.0 passes `validate()` (tolerance `1 + 1e-9`) so the artifact
/// loads — but the Jury margin is zero, which is exactly what M001 exists
/// to catch before the model reaches a solver.
#[test]
fn marginal_receiver_artifact_trips_m001() {
    let dir = scratch_dir("m001");
    let model = ReceiverModel {
        name: "rx_marginal".into(),
        ts: 25e-12,
        vdd: 1.8,
        linear: ArxModel::from_coefficients(
            ArxOrders { na: 1, nb: 1 },
            vec![1.0],
            vec![0.1, -0.05],
        )
        .unwrap(),
        up: stable_narx(),
        down: stable_narx(),
    };
    assert!(model.validate().is_ok(), "fixture must survive the loader");
    let codes = roundtrip_codes(
        &dir.join("rx.mdlx"),
        &Artifact::single(AnyModel::Receiver(model)),
    );
    assert_eq!(codes, vec!["M001"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// IBIS validation checks finiteness and table shapes, not physics: a
/// non-monotone pullup table loads fine and must surface as M005.
#[test]
fn non_monotone_iv_table_trips_m005() {
    let dir = scratch_dir("m005");
    let n = 4;
    let model = IbisModel {
        name: "ibis_bad".into(),
        vdd: 1.8,
        // Rises then falls: both directions present.
        pullup: Pwl::new(vec![-0.9, 0.9, 2.7], vec![0.0, 1.0e-3, 0.5e-3]).unwrap(),
        pulldown: Pwl::new(vec![-0.9, 0.9, 2.7], vec![1.0e-3, 0.5e-3, 0.0]).unwrap(),
        c_comp: 1e-12,
        dt: 25e-12,
        ku_rise: vec![0.5; n],
        kd_rise: vec![0.5; n],
        ku_fall: vec![0.5; n],
        kd_fall: vec![0.5; n],
    };
    assert!(model.validate().is_ok(), "fixture must survive the loader");
    let codes = roundtrip_codes(
        &dir.join("ibis.mdlx"),
        &Artifact::single(AnyModel::Ibis(model)),
    );
    assert_eq!(codes, vec!["M005"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Switching weights outside [-0.5, 1.5] load fine (the clamp lives in
/// extraction, not in `WeightSequence`) and must surface as M007.
#[test]
fn out_of_range_weights_trip_m007() {
    let dir = scratch_dir("m007");
    let narx = || {
        NarxModel::from_network(
            NarxOrders::dynamic(1),
            RbfNetwork::from_parts(
                3,
                vec![vec![0.0, 0.0, 0.0], vec![1.8, 0.0, 0.0]],
                vec![0.6, 0.6],
                vec![0.005, -0.005],
                0.0,
                vec![0.01, 0.0, 0.0],
            )
            .unwrap(),
        )
        .unwrap()
    };
    let model = PwRbfDriverModel {
        name: "drv_hot".into(),
        ts: 25e-12,
        vdd: 1.8,
        i_high: narx(),
        i_low: narx(),
        up: WeightSequence::new(vec![0.0, 3.0], vec![1.0, 0.0]).unwrap(),
        down: WeightSequence::new(vec![1.0, 0.0], vec![0.0, 1.0]).unwrap(),
    };
    assert!(model.validate().is_ok(), "fixture must survive the loader");
    let codes = roundtrip_codes(
        &dir.join("drv.mdlx"),
        &Artifact::single(AnyModel::PwRbfDriver(model)),
    );
    assert_eq!(codes, vec!["M007"]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Device that claims a branch unknown but leaves its branch equation row
/// empty — the canonical structurally singular pattern.
struct HalfWiredSource {
    node: Node,
    branch: usize,
}

impl Device for HalfWiredSource {
    fn label(&self) -> &str {
        "broken"
    }
    fn num_branches(&self) -> usize {
        1
    }
    fn set_branch_base(&mut self, base: usize) {
        self.branch = base;
    }
    fn register(&self, pb: &mut PatternBuilder) {
        circuit::mna::register_branch_kcl(pb, self.node, GROUND, self.branch);
    }
    fn stamp(&self, _ctx: &EvalCtx<'_>, ws: &mut StampWorkspace) {
        circuit::mna::stamp_branch_kcl(ws, self.node, GROUND, self.branch);
    }
}

#[test]
fn structurally_singular_circuit_trips_c001() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add(Resistor::new("r", a, GROUND, 50.0));
    ckt.add(HalfWiredSource { node: a, branch: 0 });
    let issues = circuit::lint::audit_circuit(&mut ckt);
    let c001 = issues
        .iter()
        .find(|i| i.code == "C001")
        .unwrap_or_else(|| panic!("expected C001, got {issues:?}"));
    assert!(c001.message.contains("structural rank"));
    // The shared registry agrees on the severity of the code.
    assert_eq!(
        macromodel::lint::code_spec("C001").unwrap().severity,
        Severity::Error
    );
}
