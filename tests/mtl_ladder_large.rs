//! Tier-1 guard for the sparse-solver scaling workload: the N-segment
//! lossy multi-driver bus ladder (see `emc_bench::run_bus_ladder`).
//!
//! Two claims are pinned here. First, on a ~300-unknown ladder — past the
//! old `MIN_DEGREE_LIMIT = 256` where the previous implementation silently
//! dropped its fill ordering — the sparse Gilbert–Peierls backend and the
//! dense O(n³) reference backend produce the same transient to ≤ 1e-8 of
//! the signal peak on a downsampled grid. Second, a ≥ 1000-unknown ladder
//! completes with a single symbolic analysis and sparse-sized factors,
//! which the dense pivot-discovery path could not have done without an
//! n × n scratch matrix and an O(n³) analysis.

use emc_bench::{ladder_disagreement, run_bus_ladder};

#[test]
fn small_bus_ladder_matches_dense_reference() {
    let sparse = run_bus_ladder(3, 11, false).expect("sparse ladder run");
    let dense = run_bus_ladder(3, 11, true).expect("dense reference run");
    assert!(
        sparse.unknowns > 256,
        "scenario must exceed the deleted ordering cutoff, got {}",
        sparse.unknowns
    );
    assert_eq!(sparse.unknowns, dense.unknowns);
    let err = ladder_disagreement(&sparse, &dense, 8);
    assert!(
        err <= 1e-8,
        "sparse vs dense downsampled disagreement {err:.3e} exceeds 1e-8"
    );
    // The whole point of the sparse path: factors stay near the pattern
    // size instead of n².
    assert!(
        sparse.solve_stats.factor_nnz * 10 < dense.solve_stats.factor_nnz,
        "sparse fill {} is not sparse against dense {}",
        sparse.solve_stats.factor_nnz,
        dense.solve_stats.factor_nnz
    );
}

#[test]
fn thousand_unknown_ladder_completes_sparsely() {
    let run = run_bus_ladder(4, 30, false).expect("large ladder transient");
    assert!(
        run.unknowns >= 1000,
        "workload shrank below the scaling target: {} unknowns",
        run.unknowns
    );
    let s = run.solve_stats;
    assert_eq!(
        s.symbolic_analyses, 1,
        "a linear circuit re-stamps identical values: one analysis"
    );
    assert!(
        s.factorizations as usize >= run.newton_iterations,
        "every Newton iteration refactors"
    );
    // Fill stays within a small constant of the unknown count (the ladder
    // is a banded graph); n²/10 would already indicate ordering collapse.
    assert!(
        s.factor_nnz < 20 * run.unknowns,
        "fill explosion: {} nnz for {} unknowns",
        s.factor_nnz,
        run.unknowns
    );
    assert!(s.flops > 0, "flop accounting must be live");
    // Matched terminations settle each lane near half swing.
    for (j, w) in run.far_voltages.iter().enumerate() {
        let v_final = *w.values().last().expect("non-empty waveform");
        assert!(
            (v_final - 0.5).abs() < 0.1,
            "lane {j} settled at {v_final:.3} V"
        );
    }
}
