//! Serving-layer integration: a store directory holding all four model
//! kinds — v1 single-model files and a v2 corner bundle side by side — is
//! scanned, batch-validated against the transistor-level references, and
//! swept through the full scenario matrix with every cell passing (the
//! fleet CI gate, in test form).

use emc_bench::serve::{standard_scenarios, sweep_store, validate_store};
use macromodel::exchange::{save_artifact_to_path, AnyModel, Artifact};
use macromodel::pipeline::DriverEstimationConfig;
use macromodel::{ExtractionSession, ModelKind, ModelStore};
use refdev::IbisCorner;
use std::path::PathBuf;
use sysid::narx::RbfTrainConfig;

fn fast_driver_cfg() -> DriverEstimationConfig {
    DriverEstimationConfig {
        n_levels: 24,
        dwell: 16,
        rbf: RbfTrainConfig {
            max_centers: 8,
            candidate_pool: 60,
            width_scale: 1.0,
            ols_tolerance: 1e-6,
        },
        t_pre: 1.5e-9,
        t_window: 3e-9,
        ..Default::default()
    }
}

/// Extracts the standard fleet into a fresh store directory: PW-RBF
/// driver (v1), receiver (v2 single-model bundle), C–R̂ baseline (v1), and
/// the three IBIS corners as one v2 bundle.
fn build_fleet_store() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let mut driver = ExtractionSession::for_driver(refdev::md1()).config(fast_driver_cfg());
    driver
        .run()
        .unwrap()
        .save(dir.join("md1-pwrbf.mdlx"))
        .unwrap();

    let mut receiver = ExtractionSession::for_receiver(refdev::md4())
        .orders(3, 2, 3)
        .excitation(24, 16, 6);
    receiver
        .run()
        .unwrap()
        .save_v2(dir.join("md4-receiver.mdlx"))
        .unwrap();

    ExtractionSession::for_cr_baseline(refdev::md4())
        .run()
        .unwrap()
        .save(dir.join("md4-cr.mdlx"))
        .unwrap();

    let mut ibis = ExtractionSession::for_ibis(refdev::md1())
        .iv_points(21)
        .tables(50e-12, 3e-9);
    let est = ibis.run().unwrap();
    let AnyModel::Ibis(base) = est.model().clone() else {
        panic!("ibis session yields an ibis model");
    };
    let corners: Vec<AnyModel> = [IbisCorner::Typical, IbisCorner::Slow, IbisCorner::Fast]
        .into_iter()
        .map(|c| AnyModel::Ibis(base.with_corner(c).unwrap()))
        .collect();
    save_artifact_to_path(
        &Artifact::bundle(corners, Some(est.provenance().clone())),
        dir.join("md1-ibis-corners.mdlx"),
    )
    .unwrap();
    dir
}

#[test]
fn fleet_store_validates_and_sweeps_green() {
    let dir = build_fleet_store();
    let store = ModelStore::open(&dir).unwrap();
    assert_eq!(store.len(), 4, "four artifact files");
    assert!(store.failures().is_empty());
    assert_eq!(store.models().len(), 6, "bundle flattened into six models");
    for kind in ModelKind::ALL {
        assert!(
            !store.of_kind(kind).is_empty(),
            "store must serve kind {kind}"
        );
    }

    // Batch re-certification against the transistor-level references.
    let validation = validate_store(&store, true);
    assert_eq!(validation.cells.len(), 6);
    assert!(
        validation.all_passed(),
        "validation failures: {:?}",
        validation
            .cells
            .iter()
            .filter(|c| !c.pass)
            .collect::<Vec<_>>()
    );
    for cell in &validation.cells {
        assert!(cell.rms_error.unwrap() <= cell.rms_limit.unwrap());
    }

    // Scenario-matrix sweep: cartesian product over applicable scenarios
    // plus one mixed-backend bus cell.
    let report = sweep_store(&store, &standard_scenarios(true));
    let driver_models = 4; // pwrbf + three IBIS corners
    let driver_scenarios = 5; // r50, linecap, bus-ladder, eye-prbs7, mc-channel
    let load_models = 2; // receiver + C–R̂
    assert_eq!(
        report.cells.len(),
        driver_models * driver_scenarios + load_models + 1
    );
    assert!(
        report.all_passed(),
        "sweep failures: {:?}",
        report.cells.iter().filter(|c| !c.pass).collect::<Vec<_>>()
    );
    let mixed = report
        .cells
        .iter()
        .find(|c| c.scenario == "bus-mixed")
        .expect("mixed-backend bus cell");
    let stats = mixed.stats.expect("bus cell carries SolveStats");
    assert_eq!(stats.symbolic_analyses, 1, "one symbolic analysis per net");
    assert!(stats.unknowns > 100, "four-lane ladder is a real circuit");

    // Every driver model contributes one eye and one Monte-Carlo
    // aggregate, and all of them clear their gates on real extractions.
    assert_eq!(report.eyes.len(), driver_models);
    assert!(report
        .eyes
        .iter()
        .all(|e| e.outcome.metrics.open && e.outcome.metrics.eye_height > 0.0));
    assert_eq!(report.mc.len(), driver_models);
    assert!(report.mc.iter().all(|m| m.summary.pass));

    // The machine-readable report round-trips the cell count (cells plus
    // the eye/mc aggregate entries each carry one "scenario" key).
    let json = report.to_json();
    assert!(json.contains("\"all_passed\": true"));
    assert!(json.contains("\"schema\": 2"));
    assert_eq!(
        json.matches("\"scenario\":").count(),
        report.cells.len() + report.eyes.len() + report.mc.len()
    );

    // A registry flattened from the store serves lookups by name.
    let registry = store.to_registry();
    assert!(registry.get("md1").is_some());
    assert!(registry.get("md1_Slow").is_some());
    assert!(registry.get("md4_cr").is_some());
    std::fs::remove_dir_all(&dir).ok();
}
