//! Cross-crate integration tests: the complete modeling flow from
//! transistor-level reference device to validated macromodel.

use emc_io_macromodel::prelude::*;
use sysid::narx::RbfTrainConfig;

/// A reduced-cost estimation config used across the integration tests.
fn fast_cfg() -> DriverEstimationConfig {
    DriverEstimationConfig {
        n_levels: 40,
        dwell: 20,
        rbf: RbfTrainConfig {
            max_centers: 14,
            candidate_pool: 120,
            width_scale: 1.0,
            ols_tolerance: 1e-7,
        },
        t_pre: 1.5e-9,
        t_window: 3.5e-9,
        ..Default::default()
    }
}

/// Driver flow: estimate from MD1 and validate on a resistive load that was
/// never part of identification. The paper's Section-5 claim is a timing
/// error below ~30 ps; we assert a conservative 60 ps for the reduced
/// config plus tight amplitude tracking.
#[test]
fn driver_pipeline_md1_resistive() {
    let spec = refdev::md1();
    let model = estimate_driver(&spec, fast_cfg()).expect("estimation");
    let run = validate_driver(&spec, &model, "010", 4e-9, 12e-9, resistive_load(75.0))
        .expect("validation");
    assert!(
        run.metrics.rms_error < 0.05 * spec.vdd,
        "rms {} V",
        run.metrics.rms_error
    );
    let te = run.metrics.timing_error.expect("crossings exist");
    assert!(te < 60e-12, "timing error {:.1} ps", te * 1e12);
}

/// Driver flow on a reactive load (the Fig. 1 fixture): the macromodel must
/// track reflections it never saw during identification.
#[test]
fn driver_pipeline_md1_line_cap() {
    let spec = refdev::md1();
    let model = estimate_driver(&spec, fast_cfg()).expect("estimation");
    let run = validate_driver(
        &spec,
        &model,
        "01",
        4e-9,
        12e-9,
        line_cap_load(50.0, 0.8e-9, 10e-12),
    )
    .expect("validation");
    assert!(
        run.metrics.rms_error < 0.06 * spec.vdd,
        "rms {} V",
        run.metrics.rms_error
    );
    assert!(
        run.metrics.max_error < 0.25 * spec.vdd,
        "max {} V",
        run.metrics.max_error
    );
}

/// The same pipeline must work across supply voltages (MD2, 1.8 V).
#[test]
fn driver_pipeline_md2() {
    let spec = refdev::md2();
    let model = estimate_driver(&spec, fast_cfg()).expect("estimation");
    assert_eq!(model.vdd, 1.8);
    let run = validate_driver(&spec, &model, "010", 2e-9, 6e-9, resistive_load(60.0))
        .expect("validation");
    assert!(
        run.metrics.rms_error < 0.05 * spec.vdd,
        "rms {} V",
        run.metrics.rms_error
    );
}

/// Receiver flow: the estimated parametric model reproduces the reference
/// pad voltage through a series resistor within tens of millivolts, both
/// inside the rails and into the clamp region.
#[test]
fn receiver_pipeline_md4() {
    let spec = refdev::md4();
    let model = estimate_receiver(
        &spec,
        ReceiverEstimationConfig {
            n_levels: 30,
            dwell: 48,
            r_lin: 3,
            ..Default::default()
        },
    )
    .expect("estimation");
    let ts = model.ts;

    let run = |with_model: bool| -> Waveform {
        let stim = SourceWaveform::Pulse {
            low: 0.0,
            high: 2.4, // exceeds VDD: clamp region
            delay: 0.4e-9,
            rise: 100e-12,
            width: 2e-9,
            fall: 100e-12,
        };
        if with_model {
            let mut ckt = Circuit::new();
            let s = ckt.node("src");
            ckt.add(VoltageSource::new("vs", s, GROUND, stim));
            let pad = ckt.node("pad");
            ckt.add(Resistor::new("rs", s, pad, 60.0));
            ckt.add(ReceiverModelDevice::new(model.clone(), pad));
            let res = ckt.transient(TranParams::new(ts, 4e-9)).expect("tran");
            res.voltage(pad)
        } else {
            let cap = refdev::extraction::capture_receiver(
                &spec,
                |ckt, pad| {
                    let s = ckt.node("src");
                    ckt.add(VoltageSource::new(
                        "vs",
                        s,
                        GROUND,
                        SourceWaveform::Pulse {
                            low: 0.0,
                            high: 2.4,
                            delay: 0.4e-9,
                            rise: 100e-12,
                            width: 2e-9,
                            fall: 100e-12,
                        },
                    ));
                    ckt.add(Resistor::new("rs", s, pad, 60.0));
                    Ok(())
                },
                ts,
                4e-9,
            )
            .expect("capture");
            cap.voltage
        }
    };
    let reference = run(false);
    let predicted = run(true);
    let m = ValidationMetrics::between(&predicted, &reference, 0.5 * spec.vdd);
    assert!(m.rms_error < 0.08, "rms {} V", m.rms_error);
    assert!(m.max_error < 0.25, "max {} V", m.max_error);
}

/// The C–R̂ baseline must be *worse* than the parametric model on a
/// dynamic fixture — this ordering is the point of the paper's Fig. 5/6.
#[test]
fn parametric_beats_cr_baseline() {
    let spec = refdev::md4();
    let model = estimate_receiver(
        &spec,
        ReceiverEstimationConfig {
            n_levels: 30,
            dwell: 48,
            r_lin: 3,
            ..Default::default()
        },
    )
    .expect("estimation");
    let cr = estimate_cr_baseline(&spec, model.ts).expect("cr estimation");
    let ts = model.ts;

    let stim = || SourceWaveform::Pulse {
        low: 0.0,
        high: 1.0,
        delay: 0.4e-9,
        rise: 100e-12,
        width: 2e-9,
        fall: 100e-12,
    };
    // Reference current.
    let reference = refdev::extraction::capture_receiver(
        &spec,
        |ckt, pad| {
            let s = ckt.node("src");
            ckt.add(VoltageSource::new("vs", s, GROUND, stim()));
            ckt.add(Resistor::new("rs", s, pad, 60.0));
            Ok(())
        },
        ts,
        3e-9,
    )
    .expect("capture")
    .current;

    let run = |install: &dyn Fn(&mut Circuit, circuit::Node)| -> Waveform {
        let mut ckt = Circuit::new();
        let s = ckt.node("src");
        ckt.add(VoltageSource::new("vs", s, GROUND, stim()));
        let pad = ckt.node("pad");
        ckt.add(Resistor::new("rs", s, pad, 60.0));
        install(&mut ckt, pad);
        let res = ckt.transient(TranParams::new(ts, 3e-9)).expect("tran");
        let vs = res.voltage(s);
        let vp = res.voltage(pad);
        let i: Vec<f64> = vs
            .values()
            .iter()
            .zip(vp.values())
            .map(|(a, b)| (a - b) / 60.0)
            .collect();
        Waveform::from_parts(vs.times().to_vec(), i)
    };
    let m = model.clone();
    let i_param = run(&move |ckt, pad| {
        ckt.add(ReceiverModelDevice::new(m.clone(), pad));
    });
    let c = cr.clone();
    let i_cr = run(&move |ckt, pad| {
        c.instantiate(ckt, pad);
    });
    let err_param = circuit::waveform::rms_difference(&reference, &i_param);
    let err_cr = circuit::waveform::rms_difference(&reference, &i_cr);
    assert!(
        err_param < err_cr,
        "parametric {err_param:.3e} A should beat C-R {err_cr:.3e} A"
    );
}

/// Serialization round-trip: models survive serde (JSON-free check via the
/// `serde` data model using a simple in-memory format is out of scope;
/// instead assert `Clone`/`Debug` plus structural invariants persist).
#[test]
fn model_structural_invariants() {
    let spec = refdev::md1();
    let model = estimate_driver(&spec, fast_cfg()).expect("estimation");
    assert!(model.validate().is_ok());
    let copy = model.clone();
    assert_eq!(copy.up.len(), model.up.len());
    assert_eq!(copy.total_basis_functions(), model.total_basis_functions());
    assert!(format!("{model:?}").contains("PwRbfDriverModel"));
    // Weight windows are anchored at logic steady states.
    assert_eq!(model.up.at(0), (0.0, 1.0));
    assert_eq!(model.up.at(model.up.len() - 1), (1.0, 0.0));
    assert_eq!(model.down.at(0), (1.0, 0.0));
    assert_eq!(model.down.at(model.down.len() - 1), (0.0, 1.0));
}
