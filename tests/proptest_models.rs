//! Property-based tests on macromodel invariants that must hold for *any*
//! model the estimation pipeline can produce.

use macromodel::driver::{estimate_switching_weights, WeightSequence};
use proptest::prelude::*;
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

fn smooth_weights(n: usize) -> (Vec<f64>, Vec<f64>) {
    let wh: Vec<f64> = (0..n)
        .map(|k| {
            let x = k as f64 / (n - 1) as f64;
            x * x * (3.0 - 2.0 * x) // smoothstep
        })
        .collect();
    let wl = wh.iter().map(|w| 1.0 - w).collect();
    (wh, wl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Weight inversion recovers arbitrary smooth weight trajectories from
    /// synthetic two-load data whenever the loads are independent.
    #[test]
    fn weight_inversion_recovers(
        n in 8usize..40,
        amp_a in 0.01f64..0.1,
        amp_b in 0.01f64..0.1,
        phase in 0.0f64..3.0,
    ) {
        let (wh, wl) = smooth_weights(n);
        let i_h_a: Vec<f64> = (0..n).map(|k| amp_a * (0.3 * k as f64 + phase).sin() + 0.05).collect();
        let i_l_a: Vec<f64> = (0..n).map(|k| -amp_a * (0.2 * k as f64).cos() - 0.04).collect();
        let i_h_b: Vec<f64> = (0..n).map(|k| amp_b * (0.15 * k as f64).cos() + 0.07).collect();
        let i_l_b: Vec<f64> = (0..n).map(|k| -amp_b * (0.4 * k as f64 + phase).sin() - 0.06).collect();
        let meas_a: Vec<f64> = (0..n).map(|k| wh[k] * i_h_a[k] + wl[k] * i_l_a[k]).collect();
        let meas_b: Vec<f64> = (0..n).map(|k| wh[k] * i_h_b[k] + wl[k] * i_l_b[k]).collect();
        let w = estimate_switching_weights(
            &i_h_a, &i_l_a, &meas_a, &i_h_b, &i_l_b, &meas_b,
            ((0.0, 1.0), (1.0, 0.0)),
        ).unwrap();
        for k in 1..n - 1 {
            // Interior samples recovered when the 2x2 system is well posed;
            // regularized samples fall back within the clamp range.
            prop_assert!(w.w_high()[k] >= -0.25 && w.w_high()[k] <= 1.25);
            let det = i_h_a[k] * i_l_b[k] - i_l_a[k] * i_h_b[k];
            let scale = i_h_a[k].abs().max(i_l_a[k].abs()).max(i_h_b[k].abs()).max(i_l_b[k].abs());
            if det.abs() > 1e-3 * scale * scale {
                prop_assert!((w.w_high()[k] - wh[k]).abs() < 1e-6,
                    "k={}: {} vs {}", k, w.w_high()[k], wh[k]);
            }
        }
    }

    /// Weight lookup clamps to the window and stays within physical bounds.
    #[test]
    fn weight_sequence_lookup_total(n in 1usize..50, k in 0usize..200) {
        let (wh, wl) = if n == 1 {
            (vec![1.0], vec![0.0])
        } else {
            smooth_weights(n)
        };
        let seq = WeightSequence::new(wh, wl).unwrap();
        let (a, b) = seq.at(k);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((0.0..=1.0).contains(&b));
    }

    /// NARX free-run output of a contraction-stable affine model is bounded
    /// for bounded inputs (no surprise divergence in the device wrapper).
    #[test]
    fn narx_affine_free_run_bounded(
        gain in -0.9f64..0.9,
        b0 in -1.0f64..1.0,
        u_amp in 0.0f64..2.0,
    ) {
        let net = RbfNetwork::affine(0.0, vec![b0, 0.0, gain]);
        let model = NarxModel::from_network(NarxOrders::dynamic(1), net).unwrap();
        let u: Vec<f64> = (0..200).map(|k| u_amp * (0.1 * k as f64).sin()).collect();
        let y = model.simulate(&u, &[0.0]);
        let bound = (b0.abs() * u_amp + 1e-9) / (1.0 - gain.abs()) + 1.0;
        for v in y {
            prop_assert!(v.abs() <= bound, "output {} exceeds bound {}", v, bound);
        }
    }

    /// The RBF gradient is consistent with finite differences for random
    /// small networks (the Newton Jacobian of every macromodel device).
    #[test]
    fn rbf_gradient_consistency(
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
        w1 in -1.0f64..1.0,
        w2 in -1.0f64..1.0,
        width in 0.1f64..2.0,
        x in -3.0f64..3.0,
    ) {
        let net = RbfNetwork::from_parts(
            1,
            vec![vec![c1], vec![c2]],
            vec![width, width * 0.5],
            vec![w1, w2],
            0.3,
            vec![0.7],
        ).unwrap();
        let h = 1e-6;
        let fd = (net.eval(&[x + h]) - net.eval(&[x - h])) / (2.0 * h);
        let an = net.grad_component(&[x], 0);
        prop_assert!((fd - an).abs() < 1e-5 * (1.0 + an.abs()), "fd {} vs {}", fd, an);
    }
}
