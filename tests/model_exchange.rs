//! Artifact-lifecycle integration tests: every estimated model kind
//! round-trips through the versioned exchange format, and the loaded
//! artifact reproduces the in-memory model's validation waveform exactly.

use macromodel::exchange::{load_model, save_model, AnyModel};
use macromodel::pipeline::DriverEstimationConfig;
use macromodel::{ExtractionSession, Macromodel, PortStimulus, TestFixture};
use refdev::ibis::IbisExtractConfig;
use refdev::IbisModel;
use sysid::narx::RbfTrainConfig;

fn fast_cfg() -> DriverEstimationConfig {
    DriverEstimationConfig {
        n_levels: 24,
        dwell: 16,
        rbf: RbfTrainConfig {
            max_centers: 8,
            candidate_pool: 60,
            width_scale: 1.0,
            ols_tolerance: 1e-6,
        },
        t_pre: 1.5e-9,
        t_window: 3e-9,
        ..Default::default()
    }
}

/// Saves, loads, re-saves; asserts byte identity and returns the loaded
/// model.
fn round_trip(model: &AnyModel) -> AnyModel {
    let text = save_model(model).expect("save");
    let loaded = load_model(&text).expect("load");
    let re_saved = save_model(&loaded).expect("re-save");
    assert_eq!(
        text,
        re_saved,
        "{} re-save must be byte-identical",
        model.kind()
    );
    loaded
}

/// Max absolute difference between two waveforms on the same grid.
fn max_diff(a: &circuit::Waveform, b: &circuit::Waveform) -> f64 {
    assert_eq!(a.values().len(), b.values().len(), "grids must match");
    a.values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// An estimated PW-RBF driver survives the exchange format and the loaded
/// artifact reproduces the validation waveform to <= 1e-12.
#[test]
fn estimated_driver_round_trips_and_replays() {
    let mut session = ExtractionSession::for_driver(refdev::md1()).config(fast_cfg());
    let est = session.run().expect("estimation");
    let model = est.into_model();
    let loaded = round_trip(&model);

    let fixture = TestFixture::line_cap(50.0, 0.8e-9, 10e-12);
    let stim = PortStimulus::new("01", 4e-9);
    let ts = model.sample_time().expect("sampled model");
    let wave_mem = model
        .simulate_on_load(&fixture, Some(&stim), ts, 12e-9)
        .expect("in-memory run");
    let wave_loaded = loaded
        .simulate_on_load(&fixture, Some(&stim), ts, 12e-9)
        .expect("loaded run");
    let err = max_diff(&wave_mem, &wave_loaded);
    assert!(err <= 1e-12, "loaded-model waveform differs by {err}");
}

/// Same lifecycle for the extracted IBIS baseline (and its corner set:
/// corner scaling applied to the loaded artifact matches the in-memory
/// model's corners).
#[test]
fn extracted_ibis_round_trips_and_replays() {
    let cfg = IbisExtractConfig {
        iv_points: 21,
        r_fixture: 50.0,
        dt: 50e-12,
        t_table: 3e-9,
    };
    let mut session = ExtractionSession::for_ibis(refdev::md1()).config(cfg);
    let model = session.run().expect("extraction").into_model();
    let loaded = round_trip(&model);

    let fixture = TestFixture::resistive(50.0);
    let stim = PortStimulus::new("01", 3e-9);
    let wave_mem = model
        .simulate_on_load(&fixture, Some(&stim), 50e-12, 6e-9)
        .expect("in-memory run");
    let wave_loaded = loaded
        .simulate_on_load(&fixture, Some(&stim), 50e-12, 6e-9)
        .expect("loaded run");
    assert!(max_diff(&wave_mem, &wave_loaded) <= 1e-12);

    // Corner set survives: derive corners from the loaded artifact.
    let (AnyModel::Ibis(m), AnyModel::Ibis(l)) = (&model, &loaded) else {
        panic!("ibis kind expected");
    };
    for corner in [refdev::IbisCorner::Slow, refdev::IbisCorner::Fast] {
        let a = m.with_corner(corner).unwrap();
        let b = l.with_corner(corner).unwrap();
        assert_eq!(a.c_comp, b.c_comp);
        assert_eq!(a.pullup.y(), b.pullup.y());
    }
    // A loaded IBIS model also round-trips after corner scaling.
    let fast: IbisModel = l.with_corner(refdev::IbisCorner::Fast).unwrap();
    round_trip(&AnyModel::from(fast));
}

/// Receiver parametric model and the C–R̂ baseline: byte-identical re-save
/// plus exact replay of the discrete-time response.
#[test]
fn estimated_receiver_and_cr_round_trip_and_replay() {
    let mut rx_session = ExtractionSession::for_receiver(refdev::md4())
        .orders(3, 2, 3)
        .excitation(24, 16, 6);
    let rx = rx_session.run().expect("receiver estimation").into_model();
    let rx_loaded = round_trip(&rx);

    let mut cr_session = ExtractionSession::for_cr_baseline(refdev::md4());
    let cr = cr_session.run().expect("cr estimation").into_model();
    let cr_loaded = round_trip(&cr);

    // Exact replay on a sampled record through the trait-level fixture run.
    let fixture = TestFixture::series_pulse(60.0, 0.0, 2.2, 0.4e-9, 0.1e-9, 2e-9, 0.1e-9);
    for (orig, loaded, dt) in [
        (&rx, &rx_loaded, rx.sample_time().unwrap()),
        (&cr, &cr_loaded, 25e-12),
    ] {
        let a = orig
            .simulate_on_load(&fixture, None, dt, 3e-9)
            .expect("in-memory run");
        let b = loaded
            .simulate_on_load(&fixture, None, dt, 3e-9)
            .expect("loaded run");
        let err = max_diff(&a, &b);
        assert!(err <= 1e-12, "{}: waveform differs by {err}", orig.kind());
    }
}

/// v1 ↔ v2 compatibility on estimated artifacts: a v1 byte stream loads
/// through the artifact path and re-saves as v1 unchanged; the same model
/// wrapped into a v2 bundle replays identically; and a v1 file that picked
/// up CRLF endings or trailing blank lines (Windows checkout, final-newline
/// editors) still loads and replays exactly.
#[test]
fn v1_compatibility_and_crlf_normalization_on_estimated_artifacts() {
    use macromodel::exchange::{load_artifact, save_artifact, Artifact, Provenance};
    let mut session = ExtractionSession::for_driver(refdev::md1()).config(fast_cfg());
    let est = session.run().expect("estimation");
    let model = est.model().clone();
    let v1_text = save_model(&model).expect("save v1");

    // v1 byte stream reads unchanged through the v2-aware artifact path.
    let artifact = load_artifact(&v1_text).expect("v1 via load_artifact");
    assert_eq!(artifact.version, 1);
    assert_eq!(save_artifact(&artifact).expect("re-save"), v1_text);

    // The same model in a v2 bundle replays the validation waveform.
    let bundle = Artifact::bundle(
        vec![model.clone()],
        Some(Provenance::new("cafe".to_string()).with_param("device", "md1")),
    );
    let v2_text = save_artifact(&bundle).expect("save v2");
    let from_v2 = load_model(&v2_text).expect("single-model v2 via load_model");

    // CRLF + trailing blank line on the v1 stream.
    let mangled = format!("{}\r\n", v1_text.replace('\n', "\r\n"));
    let from_crlf = load_model(&mangled).expect("CRLF artifact loads");
    assert_eq!(save_model(&from_crlf).expect("re-save"), v1_text);

    let fixture = TestFixture::resistive(50.0);
    let stim = PortStimulus::new("010", 4e-9);
    let ts = model.sample_time().expect("sampled model");
    let reference_wave = model
        .simulate_on_load(&fixture, Some(&stim), ts, 8e-9)
        .expect("in-memory run");
    for loaded in [from_v2, from_crlf] {
        let wave = loaded
            .simulate_on_load(&fixture, Some(&stim), ts, 8e-9)
            .expect("loaded run");
        assert!(max_diff(&reference_wave, &wave) <= 1e-12);
    }
}

/// A loaded artifact drives the generic validation harness exactly like the
/// in-memory model (acceptance: `validate_driver` is backend-generic).
#[test]
fn loaded_artifact_validates_like_the_original() {
    use macromodel::validate::{resistive_load, validate_driver};
    let spec = refdev::md1();
    let model = macromodel::pipeline::estimate_driver(&spec, fast_cfg()).expect("estimation");
    let loaded = round_trip(&AnyModel::from(model.clone()));

    let run_a = validate_driver(&spec, &model, "010", 4e-9, 12e-9, resistive_load(75.0))
        .expect("in-memory validation");
    let run_b = validate_driver(&spec, &loaded, "010", 4e-9, 12e-9, resistive_load(75.0))
        .expect("loaded validation");
    assert!(max_diff(&run_a.model, &run_b.model) <= 1e-12);
    assert!((run_a.metrics.rms_error - run_b.metrics.rms_error).abs() <= 1e-12);
}
