//! Fast end-to-end smoke test: the quickstart flow (estimate an MD1 driver
//! macromodel, validate it on a line+cap load) with aggressively reduced
//! settings so it finishes in seconds under `cargo test -q`. The thresholds
//! here are sanity bounds, not accuracy claims — `full_pipeline.rs` owns
//! those.

use emc_io_macromodel::prelude::*;
use sysid::narx::RbfTrainConfig;

#[test]
fn quickstart_smoke() {
    let spec = refdev::md1();
    // Much smaller than even the integration tests' fast_cfg: this exists
    // to prove the pipeline is wired end to end, cheaply.
    let cfg = DriverEstimationConfig {
        n_levels: 24,
        dwell: 16,
        rbf: RbfTrainConfig {
            max_centers: 8,
            candidate_pool: 60,
            width_scale: 1.0,
            ols_tolerance: 1e-6,
        },
        t_pre: 1.5e-9,
        t_window: 3.5e-9,
        ..Default::default()
    };
    let model = estimate_driver(&spec, cfg).expect("estimation");
    assert_eq!(model.vdd, spec.vdd);
    assert!(model.validate().is_ok());

    let run = validate_driver(
        &spec,
        &model,
        "01",
        4e-9,
        12e-9,
        line_cap_load(50.0, 0.8e-9, 10e-12),
    )
    .expect("validation");
    // Generous sanity bounds for the tiny config: the predicted pad voltage
    // must track the reference within a fraction of the supply.
    assert!(
        run.metrics.rms_error < 0.15 * spec.vdd,
        "rms {} V",
        run.metrics.rms_error
    );
    assert!(
        run.metrics.max_error < 0.6 * spec.vdd,
        "max {} V",
        run.metrics.max_error
    );
}
