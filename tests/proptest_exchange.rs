//! Property-based tests of the model-exchange format: save → load → save
//! must be byte-identical for *any* valid model, and corrupted artifacts
//! (NaN/inf values, truncation, future version tags) must fail with typed
//! errors — never load silently.

use macromodel::driver::{PwRbfDriverModel, WeightSequence};
use macromodel::exchange::{
    load_artifact, load_model, save_artifact, save_model, AnyModel, Artifact, ExchangeError,
    Provenance,
};
use macromodel::receiver::{CrModel, ReceiverModel};
use macromodel::Error;
use numkit::interp::Pwl;
use proptest::prelude::*;
use sysid::arx::{ArxModel, ArxOrders};
use sysid::narx::{NarxModel, NarxOrders};
use sysid::rbf::RbfNetwork;

/// Deterministic synthetic NARX submodel from sampled scalars.
fn synth_narx(order: usize, n_centers: usize, scale: f64, bias: f64) -> NarxModel {
    let orders = NarxOrders::dynamic(order);
    let dim = orders.dim();
    let centers: Vec<Vec<f64>> = (0..n_centers)
        .map(|i| {
            (0..dim)
                .map(|j| scale * ((i + 1) as f64) * 0.3 - 0.05 * j as f64)
                .collect()
        })
        .collect();
    let widths: Vec<f64> = (0..n_centers)
        .map(|i| 0.1 + scale.abs() * (i + 1) as f64)
        .collect();
    let weights: Vec<f64> = (0..n_centers)
        .map(|i| bias * 0.5 + 1e-3 * (i as f64 + 1.0))
        .collect();
    let linear: Vec<f64> = (0..dim).map(|j| 1e-2 * (j as f64 - 0.5) * scale).collect();
    let net = RbfNetwork::from_parts(dim, centers, widths, weights, bias, linear).unwrap();
    NarxModel::from_network(orders, net).unwrap()
}

fn synth_driver(
    n_win: usize,
    order: usize,
    n_centers: usize,
    scale: f64,
    bias: f64,
) -> PwRbfDriverModel {
    let ramp: Vec<f64> = (0..n_win)
        .map(|k| k as f64 / (n_win - 1).max(1) as f64)
        .collect();
    let inv: Vec<f64> = ramp.iter().map(|w| 1.0 - w).collect();
    PwRbfDriverModel {
        name: "prop_drv".into(),
        ts: 25e-12 * scale.max(0.01),
        vdd: 3.3,
        i_high: synth_narx(order, n_centers, scale, bias),
        i_low: synth_narx(order, n_centers, -scale, -bias),
        up: WeightSequence::new(ramp.clone(), inv.clone()).unwrap(),
        down: WeightSequence::new(inv, ramp).unwrap(),
    }
}

fn synth_receiver(order: usize, n_centers: usize, a1: f64, scale: f64) -> ReceiverModel {
    ReceiverModel {
        name: "prop_rx".into(),
        ts: 25e-12,
        vdd: 1.8,
        // |a1| < 0.9 keeps the AR part strictly stable, as the model's own
        // validation requires.
        linear: ArxModel::from_coefficients(
            ArxOrders { na: 1, nb: 1 },
            vec![a1],
            vec![0.1 * scale, -0.09 * scale],
        )
        .unwrap(),
        up: synth_narx(order, n_centers, scale, 0.1),
        down: synth_narx(order, n_centers, -scale, -0.1),
    }
}

fn synth_cr(n_pts: usize, c: f64, slope: f64) -> CrModel {
    let x: Vec<f64> = (0..n_pts).map(|k| k as f64 * 0.25 - 1.0).collect();
    let y: Vec<f64> = x.iter().map(|v| slope * v).collect();
    CrModel::new("prop_cr", c, Pwl::new(x, y).unwrap()).unwrap()
}

fn assert_byte_identical(model: AnyModel) {
    let text = save_model(&model).unwrap();
    let loaded = load_model(&text).unwrap();
    let re_saved = save_model(&loaded).unwrap();
    assert_eq!(text, re_saved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// save → load → save is byte-identical for random valid driver models.
    #[test]
    fn driver_round_trip_byte_identical(
        n_win in 2usize..24,
        order in 1usize..4,
        n_centers in 0usize..5,
        scale in 0.001f64..10.0,
        bias in -1.0f64..1.0,
    ) {
        assert_byte_identical(synth_driver(n_win, order, n_centers, scale, bias).into());
    }

    /// ... and for random receiver and C–R̂ models.
    #[test]
    fn receiver_and_cr_round_trip_byte_identical(
        order in 1usize..3,
        n_centers in 0usize..4,
        a1 in -0.85f64..0.85,
        scale in 0.01f64..5.0,
        n_pts in 2usize..30,
        c in 1e-13f64..1e-10,
    ) {
        assert_byte_identical(synth_receiver(order, n_centers, a1, scale).into());
        assert_byte_identical(synth_cr(n_pts, c, scale).into());
    }

    /// Truncating a valid artifact anywhere must fail with a typed error,
    /// never load a partial model.
    #[test]
    fn truncated_artifacts_rejected(
        n_win in 2usize..16,
        keep_frac in 0.0f64..1.0,
    ) {
        let model: AnyModel = synth_driver(n_win, 1, 2, 0.5, 0.2).into();
        let text = save_model(&model).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() - 1) as f64 * keep_frac) as usize;
        let truncated = lines[..keep].join("\n");
        let err = load_model(&truncated).unwrap_err();
        prop_assert!(
            matches!(
                err,
                Error::Exchange(
                    ExchangeError::Truncated { .. }
                        | ExchangeError::Syntax { .. }
                        | ExchangeError::UnknownField { .. }
                )
            ),
            "unexpected error class: {:?}", err
        );
    }

    /// NaN / infinity injected into any numeric record must be rejected
    /// with the NonFinite error.
    #[test]
    fn non_finite_values_rejected(
        n_win in 3usize..16,
        line_frac in 0.0f64..1.0,
        use_inf in any::<bool>(),
    ) {
        let model: AnyModel = synth_driver(n_win, 1, 2, 0.5, 0.2).into();
        let text = save_model(&model).unwrap();
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        // Pick a record carrying float payloads and poison its last token.
        let float_keys = ["bias", "linear", "center", "widths", "gweights", "wh", "wl", "ts", "vdd"];
        let candidates: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                float_keys.iter().any(|k| l.starts_with(&format!("{k} ")))
            })
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!candidates.is_empty());
        let idx = candidates[((candidates.len() - 1) as f64 * line_frac) as usize];
        let mut poisoned = lines.clone();
        let mut toks: Vec<String> = poisoned[idx]
            .split_ascii_whitespace()
            .map(str::to_string)
            .collect();
        let last = toks.len() - 1;
        toks[last] = if use_inf { "inf".into() } else { "NaN".into() };
        poisoned[idx] = toks.join(" ");
        let corrupted = poisoned.join("\n") + "\n";
        let err = load_model(&corrupted).unwrap_err();
        prop_assert!(
            matches!(err, Error::Exchange(ExchangeError::NonFinite { .. })),
            "line {}: unexpected error {:?}", idx + 1, err
        );
    }

    /// Every future version tag is rejected up front (2 is understood, but
    /// only with the bundle grammar — a v1 body under a v2 header is a
    /// syntax error, not a model).
    #[test]
    fn future_versions_rejected(version in 3u32..1000) {
        let model: AnyModel = synth_cr(3, 1e-12, 0.1).into();
        let text = save_model(&model).unwrap();
        let bumped = text.replacen("mdlx 1 ", &format!("mdlx {version} "), 1);
        let err = load_model(&bumped).unwrap_err();
        prop_assert!(matches!(
            err,
            Error::Exchange(ExchangeError::UnsupportedVersion { .. })
        ));
        let v2 = text.replacen("mdlx 1 ", "mdlx 2 ", 1);
        prop_assert!(matches!(
            load_model(&v2).unwrap_err(),
            Error::Exchange(ExchangeError::Syntax { line: 1, .. })
        ));
    }

    /// A random mdlx 2 bundle (random model mix, random provenance) is
    /// byte-identical under save → load → save, and a v1 file re-saved
    /// through the artifact path stays on its v1 byte form.
    #[test]
    fn bundle_round_trip_byte_identical(
        n_models in 1usize..5,
        order in 1usize..3,
        n_centers in 0usize..4,
        scale in 0.01f64..5.0,
        n_params in 0usize..4,
        digest_seed in any::<u64>(),
    ) {
        let digest = format!("{digest_seed:016x}");
        let models: Vec<AnyModel> = (0..n_models)
            .map(|i| match i % 3 {
                0 => synth_driver(4 + i, order, n_centers, scale, 0.2).into(),
                1 => synth_receiver(order, n_centers, 0.3, scale).into(),
                _ => synth_cr(5 + i, 1e-12, scale).into(),
            })
            .collect();
        let mut prov = Provenance::new(digest);
        for k in 0..n_params {
            prov = prov.with_param(format!("key{k}"), format!("value {k} with spaces"));
        }
        let bundle = Artifact::bundle(models, Some(prov.clone()));
        let text = save_artifact(&bundle).unwrap();
        prop_assert!(text.starts_with("mdlx 2 bundle\n"));
        let loaded = load_artifact(&text).unwrap();
        prop_assert_eq!(loaded.models.len(), n_models);
        prop_assert_eq!(loaded.provenance.as_ref(), Some(&prov));
        prop_assert_eq!(save_artifact(&loaded).unwrap(), text);

        // v1 re-saved as v1.
        let v1_text = save_model(&synth_cr(4, 1e-12, scale).into()).unwrap();
        let v1_artifact = load_artifact(&v1_text).unwrap();
        prop_assert_eq!(v1_artifact.version, 1);
        prop_assert_eq!(save_artifact(&v1_artifact).unwrap(), v1_text);
    }

    /// Truncating a v2 bundle anywhere — inside the provenance block, a
    /// model section, or between sections — fails with a typed error.
    #[test]
    fn truncated_bundles_rejected(
        keep_frac in 0.0f64..1.0,
        n_models in 1usize..4,
    ) {
        let models: Vec<AnyModel> = (0..n_models)
            .map(|i| synth_driver(3 + i, 1, 2, 0.5, 0.2).into())
            .collect();
        let bundle = Artifact::bundle(
            models,
            Some(Provenance::new("feedc0defeedc0de").with_param("device", "prop")),
        );
        let text = save_artifact(&bundle).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let keep = ((lines.len() - 1) as f64 * keep_frac) as usize;
        let truncated = lines[..keep].join("\n");
        let err = load_artifact(&truncated).unwrap_err();
        prop_assert!(
            matches!(
                err,
                Error::Exchange(
                    ExchangeError::Truncated { .. }
                        | ExchangeError::Syntax { .. }
                        | ExchangeError::UnknownField { .. }
                )
            ),
            "unexpected error class: {:?}", err
        );
    }

    /// CRLF endings and trailing blank lines never change what loads: the
    /// normalized artifact re-saves to the canonical LF bytes.
    #[test]
    fn crlf_and_trailing_blank_lines_are_normalized(
        n_win in 2usize..12,
        trailing_newlines in 0usize..4,
        crlf in any::<bool>(),
    ) {
        let model: AnyModel = synth_driver(n_win, 1, 2, 0.5, 0.2).into();
        let text = save_model(&model).unwrap();
        let mut mangled = if crlf { text.replace('\n', "\r\n") } else { text.clone() };
        for _ in 0..trailing_newlines {
            mangled.push_str(if crlf { "\r\n" } else { "\n" });
        }
        let loaded = load_model(&mangled).unwrap();
        prop_assert_eq!(save_model(&loaded).unwrap(), text);
    }
}
