//! Integration test of the paper's central claim: on a reactive load the
//! PW-RBF macromodel is substantially more accurate than the IBIS-style
//! baseline extracted from the same device.

use emc_io_macromodel::prelude::*;
use refdev::ibis::IbisExtractConfig;

#[test]
fn pwrbf_beats_ibis_on_reactive_load() {
    let spec = refdev::md1();
    // Full estimation configuration: this test asserts the paper's headline
    // accuracy ordering, so both models get their best-quality extraction.
    let pwrbf =
        estimate_driver(&spec, DriverEstimationConfig::default()).expect("pwrbf estimation");
    let ibis = IbisModel::extract(&spec, IbisExtractConfig::default()).expect("ibis extraction");

    let (z0, td, c_load) = (50.0, 0.8e-9, 10e-12);
    let (bit_time, t_stop) = (4e-9, 12e-9);

    // PW-RBF validation (also produces the shared reference waveform).
    let run = validate_driver(
        &spec,
        &pwrbf,
        "01",
        bit_time,
        t_stop,
        line_cap_load(z0, td, c_load),
    )
    .expect("pwrbf validation");

    // IBIS typical corner through the same fixture.
    let v_ibis = {
        let mut ckt = Circuit::new();
        let out = ibis.instantiate(&mut ckt, "01", bit_time);
        let far = ckt.node("far");
        ckt.add(IdealLine::new("line", out, GROUND, far, GROUND, z0, td));
        ckt.add(Capacitor::new("cl", far, GROUND, c_load));
        let res = ckt
            .transient(TranParams::new(pwrbf.ts, t_stop))
            .expect("ibis tran");
        res.voltage(out)
    };
    let m_ibis = ValidationMetrics::between(&v_ibis, &run.reference, 0.5 * spec.vdd);

    // The ordering is the paper's conclusion; the margins are generous so
    // the test is robust to estimation noise.
    assert!(
        run.metrics.rms_error < 0.6 * m_ibis.rms_error,
        "PW-RBF rms {:.3} V should clearly beat IBIS rms {:.3} V",
        run.metrics.rms_error,
        m_ibis.rms_error
    );
    let te_pwrbf = run.metrics.timing_error.expect("pwrbf crossings");
    let te_ibis = m_ibis.timing_error.expect("ibis crossings");
    assert!(
        te_pwrbf < te_ibis,
        "PW-RBF timing {:.1} ps should beat IBIS {:.1} ps",
        te_pwrbf * 1e12,
        te_ibis * 1e12
    );
    // Section-5 band for the macromodel (generous factor for the reduced
    // estimation config).
    assert!(te_pwrbf < 60e-12, "PW-RBF timing {:.1} ps", te_pwrbf * 1e12);
}

/// IBIS corner ordering sanity: fast switches earlier than slow on the
/// same fixture.
#[test]
fn ibis_corners_are_ordered() {
    let spec = refdev::md1();
    let ibis = IbisModel::extract(
        &spec,
        IbisExtractConfig {
            iv_points: 21,
            dt: 50e-12,
            t_table: 3e-9,
            ..Default::default()
        },
    )
    .expect("extraction");

    let cross = |corner: IbisCorner| -> f64 {
        let model = ibis.with_corner(corner).expect("corner");
        let mut ckt = Circuit::new();
        let out = model.instantiate(&mut ckt, "01", 3e-9);
        ckt.add(Resistor::new("rl", out, GROUND, 50.0));
        let res = ckt.transient(TranParams::new(25e-12, 6e-9)).expect("tran");
        let v = res.voltage(out);
        v.threshold_crossings(0.5 * spec.vdd * 50.0 / 58.0)
            .first()
            .expect("crossing")
            .time
    };
    let t_fast = cross(IbisCorner::Fast);
    let t_typ = cross(IbisCorner::Typical);
    let t_slow = cross(IbisCorner::Slow);
    assert!(
        t_fast <= t_typ && t_typ <= t_slow,
        "corner ordering violated: fast {t_fast:.3e}, typ {t_typ:.3e}, slow {t_slow:.3e}"
    );
}
