//! Offline stub of `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros, so `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serialization
//! format ships in this environment; the real crate is a drop-in
//! replacement once a registry is available.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
