//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate accepts `#[derive(Serialize, Deserialize)]` (including `#[serde]`
//! helper attributes) and expands to nothing. Types stay annotated exactly
//! as they would be against real serde; swapping the real crates back in is
//! a Cargo.toml-only change.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
