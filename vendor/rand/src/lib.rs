//! Offline stub of `rand`, covering the slice of the 0.8 API this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`.
//!
//! The core generator is SplitMix64 — statistically fine for signal
//! synthesis, deterministic across platforms, and dependency-free. Streams
//! differ from upstream `StdRng` (ChaCha12), which only matters if golden
//! values were recorded against the real crate.

#![forbid(unsafe_code)]

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// Minimal core-RNG interface (`rand_core::RngCore` stand-in).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Value-level sampling, mirroring `rand::distributions::Standard`.
pub trait Standard: Sized {
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut impl RngCore) -> Self {
        rng.next_f64()
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.next_f64()
    }
}

impl SampleRange<usize> for std::ops::Range<usize> {
    fn sample(self, rng: &mut impl RngCore) -> usize {
        debug_assert!(self.end > self.start);
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample(self, rng: &mut impl RngCore) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (rng.next_u64() as usize) % (hi - lo + 1)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-2.0..3.0);
            let y: f64 = b.gen_range(-2.0..3.0);
            assert_eq!(x, y);
            assert!((-2.0..3.0).contains(&x));
        }
        let bits: Vec<bool> = (0..64).map(|_| a.gen::<bool>()).collect();
        assert!(bits.iter().any(|&v| v) && bits.iter().any(|&v| !v));
    }
}
