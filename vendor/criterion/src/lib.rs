//! Offline stub of `criterion`.
//!
//! Mirrors the API slice the workspace benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `Bencher::iter`, [`black_box`] — and reports the
//! median and min/max wall-clock time per iteration as plain text. No
//! statistical analysis or plots; swap the real crate back in once a
//! registry is available.
//!
//! # Baselines
//!
//! When the `BENCH_BASELINE_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object per line:
//!
//! ```text
//! {"bench":"table1/coupled_structure_both_models","median_s":1.23,...}
//! ```
//!
//! `scripts/bench-baseline.sh` drives this to keep `BENCH_*.json` records
//! of the perf trajectory (the stub's stand-in for criterion's own
//! baseline machinery).

#![forbid(unsafe_code)]

use std::io::Write;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size.unwrap_or(10),
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(10);
        run_benchmark("", id, sample_size, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        return;
    }
    b.samples.sort_by(|x, y| x.total_cmp(y));
    let median = b.samples[b.samples.len() / 2];
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "{label:<40} median {:>12} (min {}, max {}, n={})",
        format_time(median),
        format_time(b.samples[0]),
        format_time(*b.samples.last().unwrap()),
        b.samples.len(),
    );
    if let Ok(path) = std::env::var("BENCH_BASELINE_JSON") {
        if !path.is_empty() {
            if let Err(e) = append_baseline(&path, &label, median, &b.samples) {
                eprintln!("criterion stub: cannot record baseline to {path}: {e}");
            }
        }
    }
}

/// Appends one JSON-lines record to the baseline file.
fn append_baseline(
    path: &str,
    label: &str,
    median: f64,
    sorted_samples: &[f64],
) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    // The label is code-controlled (bench ids); escape the JSON specials
    // anyway so the record can never be malformed.
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    writeln!(
        f,
        "{{\"bench\":\"{escaped}\",\"median_s\":{median:e},\"min_s\":{:e},\"max_s\":{:e},\"samples\":{}}}",
        sorted_samples[0],
        sorted_samples[sorted_samples.len() - 1],
        sorted_samples.len(),
    )
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
