//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the slice of the proptest 1.x API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * numeric-range and tuple strategies, [`strategy::Just`],
//! * [`collection::vec`] and [`arbitrary::any`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! SplitMix64 stream seeded by the test name (fully reproducible runs, no
//! `proptest-regressions` files), and failing cases are reported without
//! shrinking. Each `#[test]` still executes `ProptestConfig::cases`
//! independent random cases.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Runner configuration; only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream; seeded from the test name so every
    /// test sees its own reproducible input sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 mantissa bits.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: `generate` draws
    /// one concrete value per call.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.end > self.start);
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.end > self.start);
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(isize, i64, i32, i16, i8);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, moderate-magnitude values: what numeric property tests
            // actually want from `any::<f64>()`.
            (rng.next_f64() - 0.5) * 2e6
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Half-open size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace as re-exported by the upstream prelude.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion macros: without shrinking there is nothing to unwind back to a
/// runner, so these map directly onto the std assertions.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` test-suite macro.
///
/// Each contained `#[test] fn name(pat in strategy, ...) { body }` expands
/// to a normal `#[test]` that runs `config.cases` deterministic random
/// cases, regenerating every bound input per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
}
