//! The model-artifact lifecycle: extract a macromodel through a builder
//! session, save it as a versioned `.mdlx` file, load it back, and drive a
//! validation fixture from the loaded artifact alone — the "portable
//! behavioral model" workflow the paper is about.
//!
//! Run with: `cargo run --release --example model_exchange`

use emc_io_macromodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Extract the PW-RBF macromodel of the MD1 driver with a builder
    //    session. Re-running the session after tweaking a fit parameter
    //    (e.g. `.thresholds(...)`) reuses the transistor-level captures.
    let mut session = ExtractionSession::for_driver(md1())
        .excitation(40, 20, 6)
        .windows(1.5e-9, 3.5e-9);
    let estimated = session.run()?;
    println!("estimated: {}", estimated.summary());

    // 2. Ship it: a self-contained, versioned text artifact.
    let path = std::env::temp_dir().join("md1-pwrbf.mdlx");
    estimated.save(&path)?;
    println!("saved to {}", path.display());

    // 3. A downstream consumer loads the artifact — no reference device,
    //    no re-estimation — and uses it through the unified trait.
    let loaded = load_model_from_path(&path)?;
    println!("loaded:    {}", loaded.summary());
    for (k, v) in loaded.metadata() {
        println!("  {k:<16} {v}");
    }

    // 4. The loaded artifact drives the paper's Fig. 1 fixture.
    let wave = loaded.simulate_on_load(
        &TestFixture::line_cap(50.0, 0.8e-9, 10e-12),
        Some(&PortStimulus::new("01", 4e-9)),
        loaded.sample_time().expect("sampled model"),
        12e-9,
    )?;
    println!(
        "simulated {} samples; v(t_end) = {:.3} V",
        wave.values().len(),
        wave.values().last().unwrap()
    );

    // 5. And validates against the transistor-level reference.
    let check = estimated.validate_against_reference(
        &TestFixture::resistive(50.0),
        Some(&PortStimulus::new("010", 4e-9)),
        12e-9,
        None,
    )?;
    println!(
        "validation: rms {:.4} V, timing {:?}",
        check.metrics.rms_error, check.metrics.timing_error
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
