//! Quickstart: estimate a PW-RBF macromodel of a 3.3 V driver and validate
//! it on a transmission-line load — the full modeling flow of the paper in
//! ~30 lines.
//!
//! Run with: `cargo run --example quickstart --release`

use emc_io_macromodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The "device under modeling": a transistor-level reference of a
    //    74LVC244-class output buffer (see `refdev::md1`).
    let spec = refdev::md1();
    println!("reference device: {} ({} V supply)", spec.name, spec.vdd);

    // 2. Estimate the PW-RBF macromodel (paper eq. 1): two RBF state
    //    submodels from multilevel identification signals, switching
    //    weights by two-load linear inversion.
    let t0 = std::time::Instant::now();
    let model = estimate_driver(&spec, DriverEstimationConfig::default())?;
    println!(
        "estimated in {:.2} s: {}",
        t0.elapsed().as_secs_f64(),
        model.summary()
    );

    // 3. Validate on a load the model has never seen: an ideal 50 Ω,
    //    0.8 ns transmission line terminated by 10 pF (the Fig. 1 fixture).
    let run = validate_driver(
        &spec,
        &model,
        "01",
        4e-9,
        12e-9,
        line_cap_load(50.0, 0.8e-9, 10e-12),
    )?;
    println!(
        "validation vs transistor level: rms {:.1} mV, max {:.1} mV",
        run.metrics.rms_error * 1e3,
        run.metrics.max_error * 1e3
    );
    if let Some(te) = run.metrics.timing_error {
        println!("threshold-crossing timing error: {:.1} ps", te * 1e12);
    }
    Ok(())
}
