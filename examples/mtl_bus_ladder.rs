//! Scaling demo: a finely segmented lossy 4-lane bus, driven on every lane,
//! simulated through the sparse Gilbert–Peierls MNA solver.
//!
//! The expanded ladder reaches ≥ 1000 unknowns; the solver performs one
//! symbolic analysis for the whole transient and reports its fill-in and
//! flop counts via `SolveStats`. Built from the raw `circuit` API so the
//! pieces are visible; `emc_bench::run_bus_ladder` packages the same
//! scenario for CI.
//!
//! Run with: `cargo run --example mtl_bus_ladder --release`

use circuit::devices::{Resistor, SourceWaveform, VoltageSource};
use circuit::mtl::{expand_coupled_line, CoupledLineSpec};
use circuit::{Circuit, TranParams, GROUND};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let conductors = 4;
    let segments = 30;
    let spec = CoupledLineSpec::bus(conductors, 0.2);
    let z0 = spec.z0(0);
    println!(
        "bus: {conductors} lanes × {segments} segments, z0 ≈ {z0:.1} Ω, delay ≈ {:.2} ns",
        spec.delay(0) * 1e9
    );

    let mut ckt = Circuit::new();
    let line = expand_coupled_line(&mut ckt, &spec, segments, (1e7, 2e10))?;
    for j in 0..conductors {
        let src = ckt.node(format!("src{j}"));
        ckt.add(VoltageSource::new(
            format!("v{j}"),
            src,
            GROUND,
            SourceWaveform::Step {
                from: 0.0,
                to: 1.0,
                delay: 50e-12 * j as f64,
                rise: 100e-12,
            },
        ));
        ckt.add(Resistor::new(format!("rs{j}"), src, line.near[j], z0));
        ckt.add(Resistor::new(format!("rl{j}"), line.far[j], GROUND, z0));
    }

    let t0 = std::time::Instant::now();
    let res = ckt.transient(TranParams::new(20e-12, 4e-9))?;
    let dt = t0.elapsed().as_secs_f64();

    let n = ckt.unknown_count();
    let s = res.solve_stats;
    println!("{n} unknowns, {} timepoints in {dt:.3} s", res.len());
    println!(
        "solver: {} symbolic analysis(es), {} factorizations, factor nnz {} \
         ({:.1}× the unknown count), {} flops total",
        s.symbolic_analyses,
        s.factorizations,
        s.factor_nnz,
        s.factor_nnz as f64 / n as f64,
        s.flops
    );
    for j in 0..conductors {
        let w = res.voltage(line.far[j]);
        let peak = w.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        println!(
            "lane {j}: far-end peak {:.3} V, final {:.3} V",
            peak,
            w.values().last().unwrap()
        );
    }
    Ok(())
}
