//! Receiver modeling (Fig. 5/6): estimate the parametric receiver model
//! (linear ARX + up/down RBF protection submodels) and the simple C–R̂
//! baseline, then compare both against the transistor-level reference on a
//! lossy-line fixture that exercises the protection circuits.
//!
//! Run with: `cargo run --example receiver_modeling --release`

use circuit::mtl::{expand_coupled_line, CoupledLineSpec};
use emc_io_macromodel::prelude::*;
use macromodel::pipeline::estimate_cr_baseline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = refdev::md4();
    println!("estimating parametric receiver model of {} ...", spec.name);
    let model = estimate_receiver(
        &spec,
        ReceiverEstimationConfig {
            n_levels: 40,
            dwell: 64,
            r_lin: 3,
            ..Default::default()
        },
    )?;
    println!("  {}", model.summary());
    let cr = estimate_cr_baseline(&spec, model.ts)?;
    println!(
        "  C-R baseline: C = {:.2} pF + static PWL resistor",
        cr.c * 1e12
    );

    // Fixture: 10 cm lossy line driven through 50 ohms by a pulse whose
    // amplitude exceeds VDD, so the up-protection circuit conducts.
    let amplitude = 2.6;
    let line_spec = CoupledLineSpec::lossy_single(0.1);
    let stim = SourceWaveform::Pulse {
        low: 0.0,
        high: amplitude,
        delay: 0.5e-9,
        rise: 100e-12,
        width: 3e-9,
        fall: 100e-12,
    };
    let t_stop = 8e-9;
    let ts = model.ts;

    let run = |dut: &dyn Fn(
        &mut Circuit,
        circuit::Node,
    ) -> Result<(), Box<dyn std::error::Error>>|
     -> Result<Waveform, Box<dyn std::error::Error>> {
        let mut ckt = Circuit::new();
        let s = ckt.node("src");
        ckt.add(VoltageSource::new("vs", s, GROUND, stim.clone()));
        let line = expand_coupled_line(&mut ckt, &line_spec, 12, (1e8, 2e10))?;
        ckt.add(Resistor::new("rs", s, line.near[0], 50.0));
        let far = line.far[0];
        dut(&mut ckt, far)?;
        let res = ckt.transient(TranParams::new(ts, t_stop))?;
        Ok(res.voltage(far))
    };

    let rx = spec.clone();
    let reference = run(&move |ckt, far| {
        let ports = rx.instantiate(ckt)?;
        ckt.add(Resistor::new("j", far, ports.pad, 1e-3));
        Ok(())
    })?;
    let m = model.clone();
    let parametric = run(&move |ckt, far| {
        ckt.add(ReceiverModelDevice::new(m.clone(), far));
        Ok(())
    })?;
    let c = cr.clone();
    let cr_wave = run(&move |ckt, far| {
        c.instantiate(ckt, far);
        Ok(())
    })?;

    let mp = ValidationMetrics::between(&parametric, &reference, 0.5 * spec.vdd);
    let mc = ValidationMetrics::between(&cr_wave, &reference, 0.5 * spec.vdd);
    println!("far-end voltage with a {amplitude} V pulse (clamp region):");
    println!(
        "  parametric model: rms {:.1} mV, max {:.1} mV",
        mp.rms_error * 1e3,
        mp.max_error * 1e3
    );
    println!(
        "  C-R baseline    : rms {:.1} mV, max {:.1} mV",
        mc.rms_error * 1e3,
        mc.max_error * 1e3
    );
    println!("(the parametric model follows the protection dynamics the C-R misses)");
    Ok(())
}
