//! The model-serving workflow: build a small artifact library (v1 files
//! and a v2 corner bundle side by side), open it as a `ModelStore`, and
//! run the scenario-matrix sweep plus batch validation over the whole
//! fleet — the "estimate once, serve everywhere" deployment the paper
//! motivates.
//!
//! Run with: `cargo run --release --example model_serving`

use emc_bench::serve::{standard_scenarios, sweep_store, validate_store};
use emc_io_macromodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Stock the library: a PW-RBF driver artifact (v1) and the three
    //    IBIS process corners bundled into one provenance-stamped v2 file.
    let dir = std::env::temp_dir().join("mdlx_serving_example");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir)?;

    let mut driver = ExtractionSession::for_driver(md1())
        .excitation(24, 16, 6)
        .windows(1.5e-9, 3e-9);
    driver.run()?.save(dir.join("md1-pwrbf.mdlx"))?;

    let mut ibis = ExtractionSession::for_ibis(md1())
        .iv_points(21)
        .tables(50e-12, 3e-9);
    let est = ibis.run()?;
    let AnyModel::Ibis(base) = est.model().clone() else {
        unreachable!("ibis session yields an ibis model");
    };
    let corners: Vec<AnyModel> = [IbisCorner::Typical, IbisCorner::Slow, IbisCorner::Fast]
        .into_iter()
        .map(|c| base.with_corner(c).map(AnyModel::Ibis))
        .collect::<Result<_, _>>()?;
    save_artifact_to_path(
        &Artifact::bundle(corners, Some(est.provenance().clone())),
        dir.join("md1-ibis-corners.mdlx"),
    )?;

    // 2. Open the store: every artifact parsed, errors collected per file.
    let store = ModelStore::open(&dir)?;
    println!(
        "store {}: {} artifacts, {} models, {} load failures",
        store.root().display(),
        store.len(),
        store.models().len(),
        store.failures().len()
    );
    for (path, model) in store.models() {
        println!(
            "  {} [{}] from {}",
            model.name(),
            model.kind(),
            path.file_name().unwrap().to_string_lossy()
        );
    }

    // 3. Batch re-certification: every model vs its transistor-level
    //    reference, per-kind accuracy gates.
    let validation = validate_store(&store, true);
    for cell in &validation.cells {
        println!(
            "validate {:<14} rms {:.4} V (limit {:.4} V) -> {}",
            cell.model,
            cell.rms_error.unwrap_or(f64::NAN),
            cell.rms_limit.unwrap_or(f64::NAN),
            if cell.pass { "ok" } else { "FAIL" }
        );
    }

    // 4. The scenario matrix: fixtures + bus ladders + the mixed-backend
    //    bus, every cell with SolveStats.
    let report = sweep_store(&store, &standard_scenarios(true));
    println!(
        "sweep: {}/{} cells passed (all_passed = {})",
        report.passed(),
        report.cells.len(),
        report.all_passed()
    );
    let json = report.to_json();
    println!("JSON report: {} bytes", json.len());

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
