//! The paper's core comparison (Fig. 1): PW-RBF macromodel vs an IBIS-style
//! model of the same driver, both judged against the transistor-level
//! reference on a reactive load.
//!
//! IBIS blends static I–V tables with fixed switching templates, so it
//! cannot react to reflections arriving *during* an edge; the PW-RBF model
//! keeps the full nonlinear dynamics. This example prints the error of both
//! models side by side.
//!
//! Run with: `cargo run --example driver_vs_ibis --release`

use emc_io_macromodel::prelude::*;
use refdev::ibis::IbisExtractConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = refdev::md1();

    println!("estimating PW-RBF model of {} ...", spec.name);
    let pwrbf = estimate_driver(&spec, DriverEstimationConfig::default())?;

    println!("extracting IBIS model (I-V sweeps + two V-T waveforms) ...");
    let ibis = IbisModel::extract(&spec, IbisExtractConfig::default())?;

    // Validation fixture: 50 ohm / 0.8 ns ideal line + 10 pF far-end cap.
    let (z0, td, c_load) = (50.0, 0.8e-9, 10e-12);
    let (bit_time, t_stop) = (4e-9, 12e-9);

    // Reference waveform.
    let reference = validate_driver(
        &spec,
        &pwrbf,
        "01",
        bit_time,
        t_stop,
        line_cap_load(z0, td, c_load),
    )?;
    println!(
        "PW-RBF        : rms {:.1} mV, max {:.1} mV, timing {}",
        reference.metrics.rms_error * 1e3,
        reference.metrics.max_error * 1e3,
        fmt_timing(reference.metrics.timing_error),
    );

    for corner in [IbisCorner::Slow, IbisCorner::Typical, IbisCorner::Fast] {
        let model = ibis.with_corner(corner)?;
        let mut ckt = Circuit::new();
        let out = model.instantiate(&mut ckt, "01", bit_time);
        let far = ckt.node("far");
        ckt.add(IdealLine::new("line", out, GROUND, far, GROUND, z0, td));
        ckt.add(Capacitor::new("cl", far, GROUND, c_load));
        let res = ckt.transient(TranParams::new(pwrbf.ts, t_stop))?;
        let v = res.voltage(out);
        let m = ValidationMetrics::between(&v, &reference.reference, 0.5 * spec.vdd);
        println!(
            "IBIS {corner:<9?}: rms {:.1} mV, max {:.1} mV, timing {}",
            m.rms_error * 1e3,
            m.max_error * 1e3,
            fmt_timing(m.timing_error),
        );
    }
    println!("(compare: the PW-RBF error stays an order of magnitude below IBIS)");
    Ok(())
}

fn fmt_timing(t: Option<f64>) -> String {
    match t {
        Some(t) => format!("{:.1} ps", t * 1e12),
        None => "n/a".into(),
    }
}
