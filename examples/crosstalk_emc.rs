//! EMC scenario (Fig. 3/4): two drivers on a coupled lossy MCM
//! interconnect; the quiet line's far-end crosstalk is predicted with
//! PW-RBF macromodels and compared against the transistor-level reference.
//!
//! Run with: `cargo run --example crosstalk_emc --release`

use circuit::mtl::{expand_coupled_line, CoupledLineSpec};
use emc_io_macromodel::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = refdev::md3();
    println!("estimating PW-RBF model of {} ...", spec.name);
    let model = estimate_driver(&spec, DriverEstimationConfig::default())?;
    let ts = model.ts;

    let line_spec = CoupledLineSpec::mcm_date02();
    println!(
        "coupled line: Z0 = {:.1} Ω, Td = {:.0} ps over {} m",
        line_spec.z0(0),
        line_spec.delay(0) * 1e12,
        line_spec.length
    );

    let pattern_active = "0110111010";
    let pattern_quiet = "0000000000";
    let (bit_time, t_stop) = (2e-9, 20e-9);
    let segments = 10;

    // --- transistor-level reference ---
    let run_reference = || -> Result<(Waveform, Waveform), Box<dyn std::error::Error>> {
        let mut ckt = Circuit::new();
        let line = expand_coupled_line(&mut ckt, &line_spec, segments, (1e8, 2e10))?;
        let p1 = spec.instantiate(&mut ckt, spec.pattern(pattern_active, bit_time))?;
        let p2 = spec.instantiate(&mut ckt, spec.pattern(pattern_quiet, bit_time))?;
        ckt.add(Resistor::new("j1", p1.pad, line.near[0], 1e-3));
        ckt.add(Resistor::new("j2", p2.pad, line.near[1], 1e-3));
        ckt.add(Capacitor::new("c1", line.far[0], GROUND, 1e-12));
        ckt.add(Capacitor::new("c2", line.far[1], GROUND, 1e-12));
        let res = ckt.transient(TranParams::new(5e-12, t_stop))?;
        Ok((res.voltage(line.far[0]), res.voltage(line.far[1])))
    };
    println!("running transistor-level reference ...");
    let (v21_ref, v22_ref) = run_reference()?;

    // --- PW-RBF macromodels ---
    println!("running PW-RBF macromodels ...");
    let mut ckt = Circuit::new();
    let line = expand_coupled_line(&mut ckt, &line_spec, segments, (1e8, 2e10))?;
    let d1 = ckt.node("drv1");
    ckt.add(PwRbfDriver::new(
        model.clone(),
        d1,
        pattern_active,
        bit_time,
    ));
    let d2 = ckt.node("drv2");
    ckt.add(PwRbfDriver::new(model, d2, pattern_quiet, bit_time));
    ckt.add(Resistor::new("j1", d1, line.near[0], 1e-3));
    ckt.add(Resistor::new("j2", d2, line.near[1], 1e-3));
    ckt.add(Capacitor::new("c1", line.far[0], GROUND, 1e-12));
    ckt.add(Capacitor::new("c2", line.far[1], GROUND, 1e-12));
    let res = ckt.transient(TranParams::new(ts, t_stop))?;
    let v21 = res.voltage(line.far[0]);
    let v22 = res.voltage(line.far[1]);

    let m_active = ValidationMetrics::between(&v21, &v21_ref, 0.5 * spec.vdd);
    let m_quiet = ValidationMetrics::between(&v22, &v22_ref, 25e-3);
    println!(
        "active land : rms {:.1} mV, max {:.1} mV, timing {:?} ps",
        m_active.rms_error * 1e3,
        m_active.max_error * 1e3,
        m_active
            .timing_error
            .map(|t| (t * 1e12 * 10.0).round() / 10.0)
    );
    let xtalk_peak = v22_ref
        .values()
        .iter()
        .fold(0.0_f64, |m, &v| m.max(v.abs()));
    println!(
        "quiet land  : crosstalk peak {:.1} mV, model rms error {:.1} mV",
        xtalk_peak * 1e3,
        m_quiet.rms_error * 1e3
    );
    Ok(())
}
