#!/usr/bin/env bash
# CI smoke for the model-artifact lifecycle: extract the md1 PW-RBF driver
# to a .mdlx file, print its inventory, then `mdl validate` — which checks
# the bit-exact re-save guarantee AND re-simulates the artifact against the
# transistor-level reference, failing on round-trip or accuracy
# regressions. Finally a simulate run proves a loaded artifact drives a
# fixture end-to-end without re-estimation.
#
# Usage: scripts/mdl-smoke.sh
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

mdl() {
    cargo run --release -q -p emc-bench --bin mdl -- "$@"
}

artifact="$workdir/md1-pwrbf.mdlx"
mdl extract md1 --fast --out "$artifact"
mdl info "$artifact"
mdl validate "$artifact" --fast
# A loaded artifact must drive the Fig.1 fixture purely from the file.
lines="$(mdl simulate "$artifact" --fixture linecap --pattern 01 --t-stop 12e-9 | wc -l)"
if [ "$lines" -lt 100 ]; then
    echo "simulate produced only $lines CSV lines" >&2
    exit 1
fi
echo "mdl artifact lifecycle smoke: ok ($lines waveform samples)"
