#!/usr/bin/env bash
# Link check for the hand-written docs: every relative markdown link in
# README.md and docs/*.md must point at a file that exists (anchors are
# checked against the target's headings). External http(s) links are not
# fetched — CI must not depend on the network — only their syntax is
# required to parse. Exits nonzero listing every broken link.
#
# Usage: scripts/check-doc-links.sh [file...]   (default: README.md docs/*.md)
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md docs/*.md)
fi

python3 - "${files[@]}" <<'EOF'
import os
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#+\s+(.*)$", re.M)


def anchors(path):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    out = set()
    with open(path, encoding="utf-8") as f:
        for heading in HEADING.findall(f.read()):
            heading = re.sub(r"[`*_]", "", heading.strip().lower())
            slug = re.sub(r"[^\w\- ]", "", heading, flags=re.UNICODE)
            out.add(slug.replace(" ", "-"))
    return out


broken = []
for src in sys.argv[1:]:
    base = os.path.dirname(src)
    with open(src, encoding="utf-8") as f:
        text = f.read()
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, anchor = target.partition("#")
        if not target:  # same-file anchor
            target_path = src
        else:
            target_path = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(target_path):
            broken.append(f"{src}: link target not found: {target or anchor}")
            continue
        if anchor and target_path.endswith(".md") and anchor not in anchors(target_path):
            broken.append(f"{src}: missing anchor #{anchor} in {target_path}")

if broken:
    print("\n".join(broken))
    sys.exit(f"{len(broken)} broken doc link(s)")
print(f"doc links ok ({len(sys.argv) - 1} file(s) checked)")
EOF
