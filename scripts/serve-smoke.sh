#!/usr/bin/env bash
# Model-server smoke: extracts the standard fleet into a store directory,
# keeps it resident behind `mdl serve` on a Unix socket, and drives the
# daemon through the framed protocol:
#
#   ls / info / simulate / stats   one-shot `mdl request` checks — every
#                                  response must carry "ok":true
#   hot reload                     rewrites an artifact in place and polls
#                                  until the daemon's reload counter moves
#                                  without dropping the connection
#   bench-serve                    a mixed simulate/validate/sweep burst;
#                                  p50/p95/p99 latency and throughput land
#                                  in $SERVE_REPORT_DIR/serve-bench.json
#                                  for upload as a workflow artifact
#
# The daemon is told to shut down over the socket; the script fails if any
# request errors, the reload never surfaces, or the load burst sees a
# single failed request.
#
# Usage: scripts/serve-smoke.sh [store-dir]
set -euo pipefail

store="${1:-}"
if [ -z "$store" ]; then
    store="$(mktemp -d)"
    cleanup_store=1
else
    cleanup_store=0
fi
report_dir="${SERVE_REPORT_DIR:-serve-reports}"
mkdir -p "$report_dir"
sock="$(mktemp -u)/serve-smoke.sock"
mkdir -p "$(dirname "$sock")"

mdl() {
    cargo run --release -q -p emc-bench --bin mdl -- "$@"
}

serve_pid=""
cleanup() {
    if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
        mdl request --socket "$sock" shutdown >/dev/null 2>&1 || kill "$serve_pid"
        wait "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$(dirname "$sock")"
    [ "$cleanup_store" = 1 ] && rm -rf "$store"
    return 0
}
trap cleanup EXIT

echo "== extracting the standard fleet into $store"
mdl extract md1 --fast --out "$store/md1-pwrbf.mdlx"
mdl extract md4 --kind receiver --fast --v2 --out "$store/md4-receiver.mdlx"
mdl extract md4 --kind cr --out "$store/md4-cr.mdlx"

echo "== starting mdl serve"
mdl serve "$store" --socket "$sock" --poll-ms 100 --fast &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
done
[ -S "$sock" ] || { echo "daemon never bound $sock" >&2; exit 1; }

echo "== protocol checks (ls / info / simulate / stats)"
mdl request --socket "$sock" ls
mdl request --socket "$sock" info md1 >/dev/null
mdl request --socket "$sock" simulate md1 >/dev/null
mdl request --socket "$sock" stats >/dev/null

echo "== hot reload: rewrite an artifact, wait for the daemon to notice"
reloads() {
    mdl request --socket "$sock" stats | sed -n 's/.*"reloads":\([0-9]*\).*/\1/p'
}
before="$(reloads)"
touch -d '2001-01-01 00:00:00' "$store/md1-pwrbf.mdlx" 2>/dev/null \
    || touch -t 200101010000 "$store/md1-pwrbf.mdlx"
after="$before"
for _ in $(seq 1 50); do
    after="$(reloads)"
    [ "$after" -gt "$before" ] && break
    sleep 0.1
done
if [ "$after" -le "$before" ]; then
    echo "daemon never registered the artifact rewrite" >&2
    exit 1
fi
# The bytes did not change, so the reload must have been a cache hit and
# the model must still answer.
mdl request --socket "$sock" simulate md1 >/dev/null
echo "hot reload: ok (reloads $before -> $after)"

echo "== latency burst (bench-serve)"
mdl bench-serve --socket "$sock" --clients 4 --requests 24 \
    --json "$report_dir/serve-bench.json"

echo "== shutdown over the socket"
mdl request --socket "$sock" shutdown >/dev/null
wait "$serve_pid"
serve_pid=""

echo "model server: ok (latency report in $report_dir/serve-bench.json)"
