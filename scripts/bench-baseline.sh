#!/usr/bin/env bash
# Bench-trajectory tracking: runs a criterion bench, compares each fresh
# median against the CONFIRMED best in BENCH_<name>.json, and FAILS on a
# regression beyond the limit (default 25 %, override with
# BENCH_REGRESSION_LIMIT, percent). Passing runs append their records, so
# the committed file accumulates a per-run trajectory.
#
# "Confirmed best" is the minimum over rolling median-of-3 windows of the
# committed trajectory: a speedup only tightens the gate once two
# neighbouring runs corroborate it, so a single lucky outlier run cannot
# ratchet the baseline below what the machine can actually sustain — while
# still comparing against the best confirmed level ever committed, so a
# sequence of sub-limit slowdowns can never compound either.
#
# The criterion stub appends one JSON object per benchmark when
# BENCH_BASELINE_JSON is set; this script drives it through a temp file.
# The `eval` and `eye` benches are not criterion benches: they run through
# the release `mdl bench-eval` / `mdl bench-eye` subcommands, which append
# the same record schema via their --baseline flag.
#
# Usage: scripts/bench-baseline.sh [bench-name]   (default: table1)
set -euo pipefail

bench="${1:-table1}"
# Absolute path: cargo runs bench binaries with the *package* directory as
# their working directory, not the workspace root.
committed="$(pwd)/BENCH_${bench}.json"
limit="${BENCH_REGRESSION_LIMIT:-25}"

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

if [ "$bench" = "eval" ]; then
    cargo run --release -q -p emc-bench --bin mdl -- bench-eval --baseline "$fresh"
elif [ "$bench" = "eye" ]; then
    cargo run --release -q -p emc-bench --bin mdl -- bench-eye --baseline "$fresh"
elif [ "$bench" = "store" ]; then
    # The store bench also enforces the absolute tentpole floor (lazy
    # binary open >= 10x the eager text parse) on top of the relative
    # trajectory gate below.
    cargo run --release -q -p emc-bench --bin mdl -- bench-store --min-speedup 10 --baseline "$fresh"
else
    BENCH_BASELINE_JSON="$fresh" cargo bench -p emc-bench --bench "$bench"
fi

python3 - "$committed" "$fresh" "$limit" <<'EOF'
import json
import sys

committed_path, fresh_path, limit = sys.argv[1], sys.argv[2], float(sys.argv[3])

def read_records(path):
    records = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except FileNotFoundError:
        pass
    return records

committed = read_records(committed_path)
fresh = read_records(fresh_path)
if not fresh:
    sys.exit(f"no fresh bench records in {fresh_path}")

# Baseline per bench id: the confirmed best — the minimum over rolling
# median-of-3 windows of the committed trajectory. Comparing against the
# latest record would let sub-limit slowdowns compound run over run;
# comparing against the single best-ever median lets one lucky outlier
# run ratchet the gate permanently below sustainable performance. The
# median-of-3 requires two neighbouring runs to corroborate a speedup
# before it tightens the gate. With fewer than three committed records
# the plain minimum is the only option.
history = {}
for rec in committed:
    history.setdefault(rec["bench"], []).append(rec["median_s"])

baseline = {}
for name, medians in history.items():
    if len(medians) < 3:
        baseline[name] = min(medians)
    else:
        baseline[name] = min(
            sorted(medians[i : i + 3])[1] for i in range(len(medians) - 2)
        )

failed = False
for rec in fresh:
    name, median = rec["bench"], rec["median_s"]
    base_median = baseline.get(name)
    if base_median is None:
        print(f"{name}: no committed baseline, recording {median:.4e} s")
        continue
    delta_pct = 100.0 * (median - base_median) / base_median
    verdict = "ok"
    if delta_pct > limit:
        verdict = f"REGRESSION (> {limit:.0f}% limit)"
        failed = True
    print(
        f"{name}: {median:.4e} s vs confirmed best {base_median:.4e} s "
        f"({delta_pct:+.1f}%) {verdict}"
    )

if failed:
    sys.exit(1)

# Append the passing run so the committed file accumulates a trajectory.
with open(committed_path, "a") as f:
    for rec in fresh:
        f.write(json.dumps(rec, separators=(",", ":")) + "\n")
print(f"trajectory appended to {committed_path} ({len(fresh)} record(s))")
EOF

echo "baseline trajectory:"
cat "$committed"
