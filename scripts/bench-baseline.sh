#!/usr/bin/env bash
# Records bench medians into JSON-lines baseline files so the performance
# trajectory is a committed artifact instead of scrollback. The criterion
# stub appends one record per benchmark when BENCH_BASELINE_JSON is set;
# this script truncates the target first so each run is a fresh snapshot.
#
# Usage: scripts/bench-baseline.sh [bench-name]   (default: table1)
set -euo pipefail

bench="${1:-table1}"
# Absolute path: cargo runs bench binaries with the *package* directory as
# their working directory, not the workspace root.
out="$(pwd)/BENCH_${bench}.json"

: >"$out"
BENCH_BASELINE_JSON="$out" cargo bench -p emc-bench --bench "$bench"

echo "baseline written to $out:"
cat "$out"
