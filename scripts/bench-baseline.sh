#!/usr/bin/env bash
# Bench-trajectory tracking: runs a criterion bench, compares each fresh
# median against the BEST committed record in BENCH_<name>.json, and FAILS
# on a regression beyond the limit (default 25 %, override with
# BENCH_REGRESSION_LIMIT, percent). Passing runs append their records, so
# the committed file accumulates a per-run trajectory — but the gate always
# measures against the best median ever committed, so a sequence of
# sub-limit slowdowns can never compound into an unbounded ratchet.
#
# The criterion stub appends one JSON object per benchmark when
# BENCH_BASELINE_JSON is set; this script drives it through a temp file.
#
# Usage: scripts/bench-baseline.sh [bench-name]   (default: table1)
set -euo pipefail

bench="${1:-table1}"
# Absolute path: cargo runs bench binaries with the *package* directory as
# their working directory, not the workspace root.
committed="$(pwd)/BENCH_${bench}.json"
limit="${BENCH_REGRESSION_LIMIT:-25}"

fresh="$(mktemp)"
trap 'rm -f "$fresh"' EXIT

BENCH_BASELINE_JSON="$fresh" cargo bench -p emc-bench --bench "$bench"

python3 - "$committed" "$fresh" "$limit" <<'EOF'
import json
import sys

committed_path, fresh_path, limit = sys.argv[1], sys.argv[2], float(sys.argv[3])

def read_records(path):
    records = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except FileNotFoundError:
        pass
    return records

committed = read_records(committed_path)
fresh = read_records(fresh_path)
if not fresh:
    sys.exit(f"no fresh bench records in {fresh_path}")

# Baseline per bench id: the BEST committed median — comparing against
# the latest record would let sub-limit slowdowns compound run over run.
baseline = {}
for rec in committed:
    name = rec["bench"]
    if name not in baseline or rec["median_s"] < baseline[name]:
        baseline[name] = rec["median_s"]

failed = False
for rec in fresh:
    name, median = rec["bench"], rec["median_s"]
    base_median = baseline.get(name)
    if base_median is None:
        print(f"{name}: no committed baseline, recording {median:.4e} s")
        continue
    delta_pct = 100.0 * (median - base_median) / base_median
    verdict = "ok"
    if delta_pct > limit:
        verdict = f"REGRESSION (> {limit:.0f}% limit)"
        failed = True
    print(
        f"{name}: {median:.4e} s vs best committed {base_median:.4e} s "
        f"({delta_pct:+.1f}%) {verdict}"
    )

if failed:
    sys.exit(1)

# Append the passing run so the committed file accumulates a trajectory.
with open(committed_path, "a") as f:
    for rec in fresh:
        f.write(json.dumps(rec, separators=(",", ":")) + "\n")
print(f"trajectory appended to {committed_path} ({len(fresh)} record(s))")
EOF

echo "baseline trajectory:"
cat "$committed"
