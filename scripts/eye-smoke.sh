#!/usr/bin/env bash
# Signal-integrity smoke: extracts the md1 PW-RBF driver, runs the
# standard `mdl eye` PRBS workload twice with the same seed, and checks
#
#   determinism      both JSON outcomes must be byte-identical — the seed
#                    is the only entropy source in the whole SI path
#   eye quality      the worst-lane eye must be open, with height > 0 V
#                    and width > 0.5 UI (the acceptance floor for the
#                    standard extracted driver)
#   Monte Carlo      a short `mdl mc` statistical sweep must pass its
#                    yield gates with zero closed eyes
#   failure paths    a different seed must change the outcome, and a
#                    missing artifact must exit non-zero
#
# Usage: scripts/eye-smoke.sh
set -euo pipefail

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

mdl() {
    cargo run --release -q -p emc-bench --bin mdl -- "$@"
}

artifact="$workdir/md1-pwrbf.mdlx"
mdl extract md1 --fast --out "$artifact"

# Human-readable run once for the CI log: ASCII raster plus metrics.
mdl eye "$artifact" --seed 11

mdl eye "$artifact" --seed 11 --json > "$workdir/eye-a.json"
mdl eye "$artifact" --seed 11 --json > "$workdir/eye-b.json"
if ! cmp -s "$workdir/eye-a.json" "$workdir/eye-b.json"; then
    echo "same-seed eye runs differ:" >&2
    diff "$workdir/eye-a.json" "$workdir/eye-b.json" >&2 || true
    exit 1
fi

mdl eye "$artifact" --seed 12 --json > "$workdir/eye-c.json"
if cmp -s "$workdir/eye-a.json" "$workdir/eye-c.json"; then
    echo "different seeds produced identical eye outcomes" >&2
    exit 1
fi

python3 - "$workdir/eye-a.json" <<'EOF'
import json
import sys

m = json.load(open(sys.argv[1]))
if not m["open"]:
    sys.exit("standard driver eye reported closed")
if m["eye_height"] <= 0.0:
    sys.exit(f"degenerate eye height {m['eye_height']}")
if m["eye_width_ui"] <= 0.5:
    sys.exit(f"eye width {m['eye_width_ui']} UI below the 0.5 UI floor")
print(
    f"eye ok: height {m['eye_height']:.4f} V, "
    f"width {m['eye_width_ui']:.3f} UI, "
    f"jitter pp {m['jitter_pp_s'] * 1e12:.1f} ps"
)
EOF

mdl mc "$artifact" --trials 6 --seed 7 --json > "$workdir/mc.json"
python3 - "$workdir/mc.json" <<'EOF'
import json
import sys

s = json.load(open(sys.argv[1]))
if not s["pass"]:
    sys.exit("Monte-Carlo sweep failed its yield gates")
if s["closed_eyes"] != 0:
    sys.exit(f"{s['closed_eyes']} closed eye(s) in the MC population")
print(
    f"mc ok: {s['trials']} trials, eye height min {s['eye_height_min']:.4f} V, "
    f"jitter q {s['jitter_pp_q_s'] * 1e12:.1f} ps"
)
EOF

# A missing artifact must surface as a non-zero exit, not a silent pass.
if mdl eye "$workdir/does-not-exist.mdlx" --json 2>/dev/null; then
    echo "eye on a missing artifact exited zero" >&2
    exit 1
fi

echo "signal-integrity smoke: ok"
