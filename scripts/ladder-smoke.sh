#!/usr/bin/env bash
# CI smoke for the sparse-solver scaling workload: runs the multi-driver
# bus-ladder harness (golden sparse-vs-dense agreement at ~300 unknowns,
# then a ≥ 1000-unknown sparse transient) and prints SolveStats — symbolic
# analyses, factorizations, factor fill-in and flops — so ordering or fill
# regressions are visible in the log, not just as a pass/fail bit.
#
# Usage: scripts/ladder-smoke.sh
set -euo pipefail

cargo run --release -p emc-bench --bin gen_ladder_smoke
