#!/usr/bin/env bash
# Runs every workspace test binary individually and prints the slowest ten,
# so performance regressions show up in CI logs instead of hiding inside a
# single aggregate `cargo test` wall time.
#
# Usage: scripts/test-times.sh [N]   (default N = 10)
set -euo pipefail

top_n="${1:-10}"

# Proc-macro test binaries link against rustc's shared libstd; make sure
# they resolve it outside of `cargo test`'s environment.
sysroot="$(rustc --print sysroot)"
host="$(rustc -vV | awk '/^host:/ { print $2 }')"
export LD_LIBRARY_PATH="$sysroot/lib/rustlib/$host/lib:$sysroot/lib${LD_LIBRARY_PATH:+:$LD_LIBRARY_PATH}"

# Build (or reuse) the test binaries and collect their paths. Filter on
# `profile.test` so examples and proc-macro artifacts are excluded.
mapfile -t bins < <(
    cargo test -q --no-run --message-format=json 2>/dev/null |
        python3 -c '
import json, sys
for line in sys.stdin:
    try:
        msg = json.loads(line)
    except json.JSONDecodeError:
        continue
    if (
        msg.get("reason") == "compiler-artifact"
        and msg.get("executable")
        and msg.get("profile", {}).get("test")
    ):
        print(msg["executable"])
' | sort -u
)

if [ "${#bins[@]}" -eq 0 ]; then
    echo "no test binaries found" >&2
    exit 1
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

status=0
for bin in "${bins[@]}"; do
    start=$(date +%s%N)
    if ! "$bin" -q >/dev/null 2>&1; then
        echo "FAILED: $bin" >&2
        status=1
    fi
    end=$(date +%s%N)
    awk -v ns=$((end - start)) -v name="$(basename "$bin")" \
        'BEGIN { printf "%8.2fs  %s\n", ns / 1e9, name }' >>"$tmp"
done

echo "slowest $top_n test binaries:"
sort -rn "$tmp" | head -n "$top_n"
exit "$status"
