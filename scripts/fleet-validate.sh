#!/usr/bin/env bash
# The model-fleet CI gate: extracts the standard artifact set into a store
# directory — md1 PW-RBF driver (v1), the three md1 IBIS corners as one
# mdlx 2 bundle, md4 receiver (v2 + provenance), md4 C–R̂ baseline (v1) —
# then serves the whole library through `mdl store`:
#
#   ls        inventory (fails on unloadable artifacts)
#   validate  batch re-certification of every model against its
#             transistor-level reference, per-kind accuracy gates
#   sweep     the scenario matrix (fixtures + bus ladders + mixed-backend
#             bus) with per-cell pass/fail and SolveStats
#
# Both engine passes write machine-readable JSON reports into
# $FLEET_REPORT_DIR (default: fleet-reports/) for upload as a workflow
# artifact; any failing cell or unloadable file exits nonzero.
#
# Usage: scripts/fleet-validate.sh [store-dir]
set -euo pipefail

# Temp dirs to remove on exit (a user-supplied store dir is never listed).
scratch=()
cleanup() { if [ ${#scratch[@]} -gt 0 ]; then rm -rf "${scratch[@]}"; fi; }
trap cleanup EXIT

store="${1:-}"
if [ -z "$store" ]; then
    store="$(mktemp -d)"
    scratch+=("$store")
fi
report_dir="${FLEET_REPORT_DIR:-fleet-reports}"
mkdir -p "$report_dir"

mdl() {
    cargo run --release -q -p emc-bench --bin mdl -- "$@"
}

echo "== extracting the standard fleet into $store"
mdl extract md1 --fast --out "$store/md1-pwrbf.mdlx"
mdl extract md1 --kind ibis --fast --corners --out "$store/md1-ibis-corners.mdlx"
mdl extract md4 --kind receiver --fast --v2 --out "$store/md4-receiver.mdlx"
mdl extract md4 --kind cr --out "$store/md4-cr.mdlx"

echo "== store inventory"
mdl store ls "$store"

echo "== batch validation against transistor-level references"
mdl store validate "$store" --fast --json "$report_dir/fleet-validate.json"

echo "== scenario-matrix sweep"
mdl store sweep "$store" --fast --json "$report_dir/fleet-sweep.json"

# The binary-container leg: convert two of the fleet artifacts to the
# .mdlxb container (convert verifies text -> binary -> text byte-identity
# itself; the cmp below re-asserts it end to end through separate
# invocations), build a mixed text+binary store with them, and require
# the sweep to produce the identical report — the container must be a
# pure encoding change, invisible to every result downstream.
echo "== binary container round-trip + mixed-store sweep"
bin_store="$(mktemp -d)"
scratch+=("$bin_store")
cp "$store"/*.mdlx "$bin_store/"
mdl convert "$bin_store/md1-pwrbf.mdlx" "$bin_store/md1-pwrbf.mdlxb"
mdl convert "$bin_store/md4-receiver.mdlx" "$bin_store/md4-receiver.mdlxb"
mdl convert "$bin_store/md1-pwrbf.mdlxb" "$bin_store/md1-pwrbf.roundtrip.mdlx"
cmp "$bin_store/md1-pwrbf.mdlx" "$bin_store/md1-pwrbf.roundtrip.mdlx"
rm "$bin_store/md1-pwrbf.mdlx" "$bin_store/md4-receiver.mdlx" \
   "$bin_store/md1-pwrbf.roundtrip.mdlx"

mdl store ls "$bin_store"
mdl store sweep "$bin_store" --fast --json "$report_dir/fleet-sweep-bin.json"

# Identical up to the volatile fields: the store root (a throwaway temp
# dir each run) and per-cell wall-clock times. Every numerical result —
# waveforms, eye metrics, MC aggregates, solver statistics — must match
# the text run exactly.
python3 - "$report_dir/fleet-sweep.json" "$report_dir/fleet-sweep-bin.json" <<'EOF'
import json
import sys


def normalize(node):
    if isinstance(node, dict):
        return {
            k: normalize(v)
            for k, v in node.items()
            if k not in ("store", "elapsed_s")
        }
    if isinstance(node, list):
        out = [normalize(v) for v in node]
        if all(isinstance(v, dict) and "model" in v for v in out):
            out.sort(key=lambda c: (c["model"], c.get("scenario", "")))
        return out
    return node


with open(sys.argv[1]) as f:
    text_report = normalize(json.load(f))
with open(sys.argv[2]) as f:
    bin_report = normalize(json.load(f))
if text_report != bin_report:
    sys.exit("binary-store sweep report differs from the text-store report")
print("binary-store sweep report matches the text-store report")
EOF

echo "model fleet: ok (reports in $report_dir/)"
