#!/usr/bin/env bash
# The model-fleet CI gate: extracts the standard artifact set into a store
# directory — md1 PW-RBF driver (v1), the three md1 IBIS corners as one
# mdlx 2 bundle, md4 receiver (v2 + provenance), md4 C–R̂ baseline (v1) —
# then serves the whole library through `mdl store`:
#
#   ls        inventory (fails on unloadable artifacts)
#   validate  batch re-certification of every model against its
#             transistor-level reference, per-kind accuracy gates
#   sweep     the scenario matrix (fixtures + bus ladders + mixed-backend
#             bus) with per-cell pass/fail and SolveStats
#
# Both engine passes write machine-readable JSON reports into
# $FLEET_REPORT_DIR (default: fleet-reports/) for upload as a workflow
# artifact; any failing cell or unloadable file exits nonzero.
#
# Usage: scripts/fleet-validate.sh [store-dir]
set -euo pipefail

store="${1:-}"
if [ -z "$store" ]; then
    store="$(mktemp -d)"
    trap 'rm -rf "$store"' EXIT
fi
report_dir="${FLEET_REPORT_DIR:-fleet-reports}"
mkdir -p "$report_dir"

mdl() {
    cargo run --release -q -p emc-bench --bin mdl -- "$@"
}

echo "== extracting the standard fleet into $store"
mdl extract md1 --fast --out "$store/md1-pwrbf.mdlx"
mdl extract md1 --kind ibis --fast --corners --out "$store/md1-ibis-corners.mdlx"
mdl extract md4 --kind receiver --fast --v2 --out "$store/md4-receiver.mdlx"
mdl extract md4 --kind cr --out "$store/md4-cr.mdlx"

echo "== store inventory"
mdl store ls "$store"

echo "== batch validation against transistor-level references"
mdl store validate "$store" --fast --json "$report_dir/fleet-validate.json"

echo "== scenario-matrix sweep"
mdl store sweep "$store" --fast --json "$report_dir/fleet-sweep.json"

echo "model fleet: ok (reports in $report_dir/)"
