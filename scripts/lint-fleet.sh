#!/usr/bin/env bash
# The lint-fleet CI gate: extracts the standard artifact set into a store
# directory (same fleet as fleet-validate.sh — md1 PW-RBF driver, md1 IBIS
# corner bundle, md4 receiver v2, md4 C–R̂ baseline), then runs the static
# diagnostic engine over the whole store:
#
#   mdl lint <store>          human-readable findings with fix hints
#   mdl lint <store> --json   machine-readable report for artifact upload
#
# The exit status of `mdl lint` is the gate itself: nonzero when any
# finding reports at error severity (deny-on-error is the default policy)
# or an artifact fails to load. Warning/info findings are surfaced in the
# log and the JSON report but do not fail the job.
#
# The JSON report lands in $LINT_REPORT_DIR (default: lint-reports/) for
# upload as a workflow artifact.
#
# Usage: scripts/lint-fleet.sh [store-dir]
set -euo pipefail

store="${1:-}"
if [ -z "$store" ]; then
    store="$(mktemp -d)"
    trap 'rm -rf "$store"' EXIT
fi
report_dir="${LINT_REPORT_DIR:-lint-reports}"
mkdir -p "$report_dir"

mdl() {
    cargo run --release -q -p emc-bench --bin mdl -- "$@"
}

echo "== extracting the standard fleet into $store"
mdl extract md1 --fast --out "$store/md1-pwrbf.mdlx"
mdl extract md1 --kind ibis --fast --corners --out "$store/md1-ibis-corners.mdlx"
mdl extract md4 --kind receiver --fast --v2 --out "$store/md4-receiver.mdlx"
mdl extract md4 --kind cr --out "$store/md4-cr.mdlx"

echo "== static analysis (JSON report)"
mdl lint "$store" --json > "$report_dir/fleet-lint.json"

echo "== static analysis (human-readable)"
mdl lint "$store"

echo "lint fleet: ok (report in $report_dir/fleet-lint.json)"
