//! `emc-io-macromodel` — behavioral macromodels of digital I/O ports for
//! EMC / signal-integrity simulation.
//!
//! This is the umbrella crate of the workspace reproducing Stievano et al.,
//! *"Macromodeling of Digital I/O Ports for System EMC Assessment"*
//! (DATE 2002). It re-exports the member crates:
//!
//! * [`numkit`] — dense linear algebra, interpolation, statistics;
//! * [`circuit`] — the MNA transient circuit simulator;
//! * [`refdev`] — transistor-level reference drivers/receivers and the IBIS
//!   baseline;
//! * [`sysid`] — ARX / RBF / OLS identification machinery;
//! * [`macromodel`] — the PW-RBF driver and parametric receiver models;
//! * [`si`] — signal-integrity workloads: PRBS stimulus, eye-diagram
//!   analysis, channel topologies, and Monte-Carlo sweeps.
//!
//! # Quickstart
//!
//! ```no_run
//! use emc_io_macromodel::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Take a transistor-level reference device.
//! let spec = refdev::md1();
//! // 2. Estimate its PW-RBF macromodel.
//! let model = estimate_driver(&spec, DriverEstimationConfig::default())?;
//! // 3. Validate on a transmission-line load.
//! let run = validate_driver(&spec, &model, "01", 4e-9, 12e-9,
//!                           line_cap_load(50.0, 0.8e-9, 10e-12))?;
//! println!("timing error: {:?} s", run.metrics.timing_error);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use circuit;
pub use macromodel;
pub use numkit;
pub use refdev;
pub use si;
pub use sysid;

/// Commonly used items, one `use` away.
pub mod prelude {
    pub use circuit::devices::{
        Capacitor, CurrentSource, Diode, IdealLine, Inductor, Mosfet, Resistor, SourceWaveform,
        VoltageSource,
    };
    pub use circuit::{Circuit, TranParams, Waveform, GROUND};
    pub use macromodel::device::{PwRbfDriver, ReceiverModelDevice};
    pub use macromodel::exchange::{
        load_artifact, load_artifact_from_path, load_model, load_model_from_path, save_artifact,
        save_artifact_to_path, save_model, save_model_to_path, Artifact, Provenance,
    };
    pub use macromodel::modelstore::{LoadMode, ModelStore};
    pub use macromodel::pipeline::{
        estimate_cr_baseline, estimate_driver, estimate_receiver, DriverEstimationConfig,
        ReceiverEstimationConfig,
    };
    pub use macromodel::validate::{
        line_cap_load, resistive_load, validate_driver, validate_macromodel, ValidationMetrics,
    };
    pub use macromodel::{
        AnyModel, CrModel, EstimatedModel, ExtractionSession, Macromodel, ModelKind, ModelRegistry,
        PortStimulus, PwRbfDriverModel, ReceiverModel, TestFixture,
    };
    pub use refdev::{md1, md2, md3, md4, IbisCorner, IbisModel};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let _ = md1();
        let _ = md4();
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        ckt.add(Resistor::new("r", n, GROUND, 1.0));
    }
}
